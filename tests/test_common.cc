/** @file Unit tests for units, RNG and the stats package. */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/units.hh"

namespace carve {
namespace {

// ---- units ----------------------------------------------------------

TEST(Units, DivCeil)
{
    EXPECT_EQ(divCeil<std::uint64_t>(10, 3), 4u);
    EXPECT_EQ(divCeil<std::uint64_t>(9, 3), 3u);
    EXPECT_EQ(divCeil<std::uint64_t>(1, 128), 1u);
    EXPECT_EQ(divCeil<std::uint64_t>(0, 7), 0u);
}

TEST(Units, PowerOfTwoPredicate)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(6));
}

TEST(Units, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(7), 2u);
    EXPECT_EQ(floorLog2(1ull << 33), 33u);
}

TEST(Units, Alignment)
{
    EXPECT_EQ(alignDown(0x12345, 0x1000), 0x12000u);
    EXPECT_EQ(alignUp(0x12345, 0x1000), 0x13000u);
    EXPECT_EQ(alignDown(0x12000, 0x1000), 0x12000u);
    EXPECT_EQ(alignUp(0x12000, 0x1000), 0x12000u);
}

TEST(Units, SizeConstants)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

// ---- rng ------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

class RngBoundTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundTest, BelowStaysInRange)
{
    Rng rng(GetParam());
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST_P(RngBoundTest, UniformIsInUnitInterval)
{
    Rng rng(GetParam());
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundTest,
                         ::testing::Values(1, 7, 12345, 999999937));

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.1) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.1, 0.01);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.zipf(1000, 0.8), 1000u);
}

TEST(Rng, ZipfSkewsTowardLowIndices)
{
    Rng rng(5);
    std::uint64_t low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.zipf(100000, 1.2) < 1000)
            ++low;
    }
    // Uniform would put ~1% below 1000; a 1.2-skewed zipf puts the
    // majority there.
    EXPECT_GT(low, static_cast<std::uint64_t>(n) / 2);
}

TEST(Rng, ZipfZeroSkewIsRoughlyUniform)
{
    Rng rng(5);
    std::uint64_t low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.zipf(1000, 0.0) < 100)
            ++low;
    }
    EXPECT_NEAR(static_cast<double>(low) / n, 0.1, 0.02);
}

TEST(Rng, ZipfDegenerateSizes)
{
    Rng rng(9);
    EXPECT_EQ(rng.zipf(0, 1.0), 0u);
    EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

// ---- stats ----------------------------------------------------------

TEST(Stats, ScalarCountsAndResets)
{
    stats::Scalar s;
    ++s;
    s += 10;
    EXPECT_EQ(s.value(), 11u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageComputesMean)
{
    stats::Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Stats, DistributionBucketsAndOverflow)
{
    stats::Distribution d(4, 10);
    d.sample(0);
    d.sample(9);
    d.sample(10);
    d.sample(35);
    d.sample(1000);  // clamps into last bucket
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.max(), 1000u);
    EXPECT_EQ(d.buckets()[0], 2u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[3], 2u);
}

TEST(Stats, GroupDottedNamesAndDump)
{
    stats::StatGroup root("sys");
    stats::StatGroup child("gpu0", &root);
    stats::Scalar hits;
    hits += 7;
    child.addScalar("hits", &hits, "cache hits");
    EXPECT_EQ(child.fullName(), "sys.gpu0");

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("sys.gpu0.hits = 7"), std::string::npos);
    EXPECT_NE(os.str().find("cache hits"), std::string::npos);
}

TEST(Stats, GroupResetAllRecurses)
{
    stats::StatGroup root("r");
    stats::StatGroup child("c", &root);
    stats::Scalar a, b;
    a += 3;
    b += 4;
    root.addScalar("a", &a);
    child.addScalar("b", &b);
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

} // namespace
} // namespace carve
