/** @file Unit tests for the DRAM model: address mapping, banks,
 * FR-FCFS channel scheduling and the memory-controller front end. */

#include <gtest/gtest.h>

#include <set>

#include "common/completion.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "mem/address_mapping.hh"
#include "mem/dram_bank.hh"
#include "mem/dram_channel.hh"
#include "mem/memory_controller.hh"

namespace carve {
namespace {

// ---- address mapping ------------------------------------------------

TEST(AddressMapping, ConsecutiveLinesInterleaveChannels)
{
    AddressMapping m(128, 16, 16, 2048);
    for (unsigned i = 0; i < 64; ++i) {
        const DramCoord c = m.decode(static_cast<Addr>(i) * 128);
        EXPECT_EQ(c.channel, i % 16);
    }
}

TEST(AddressMapping, SameLineSameCoordinates)
{
    AddressMapping m(128, 16, 16, 2048);
    const DramCoord a = m.decode(0x12345680);
    const DramCoord b = m.decode(0x123456FF);  // same 128B line
    EXPECT_EQ(a, b);
}

TEST(AddressMapping, RowRunsShareARowThenSwitchBank)
{
    AddressMapping m(128, 1, 4, 2048);  // 16 lines per row
    // With one channel, lines 0..15 share (bank 0, row 0); lines
    // 16..31 move to bank 1.
    const DramCoord first = m.decode(0);
    const DramCoord last_in_row = m.decode(15 * 128);
    const DramCoord next_run = m.decode(16 * 128);
    EXPECT_EQ(first.bank, last_in_row.bank);
    EXPECT_EQ(first.row, last_in_row.row);
    EXPECT_NE(first.bank, next_run.bank);
}

TEST(AddressMapping, LinesPerRow)
{
    AddressMapping m(128, 8, 16, 2048);
    EXPECT_EQ(m.linesPerRow(), 16u);
}

// ---- bank -----------------------------------------------------------

TEST(DramBank, TracksOpenRowHitsAndMisses)
{
    DramBank bank;
    EXPECT_FALSE(bank.isOpenRow(5));
    EXPECT_FALSE(bank.access(5));  // miss opens the row
    EXPECT_TRUE(bank.isOpenRow(5));
    EXPECT_TRUE(bank.access(5));   // hit
    EXPECT_FALSE(bank.access(9));  // conflict
    EXPECT_EQ(bank.rowHits(), 1u);
    EXPECT_EQ(bank.rowMisses(), 2u);
}

TEST(DramBank, PrechargeClosesRow)
{
    DramBank bank;
    bank.access(1);
    bank.precharge();
    EXPECT_FALSE(bank.isOpenRow(1));
}

// ---- channel --------------------------------------------------------

/** Test helper: bindable Completion targets for request callbacks. */
struct Probe
{
    EventQueue *eq = nullptr;
    Cycle when = 0;
    int count = 0;
    std::vector<int> order;

    void stamp()
    {
        when = eq->now();
        ++count;
    }
    void bump() { ++count; }
    void push(std::uint64_t v)
    {
        order.push_back(static_cast<int>(v));
    }
};

struct ChannelFixture : public ::testing::Test
{
    ChannelFixture()
    {
        cfg.channels = 1;
        cfg.channel_bw = 64.0;       // 128B burst == 2 cycles
        cfg.banks_per_channel = 4;
        cfg.row_hit_latency = 10;
        cfg.row_miss_latency = 30;
        cfg.read_queue = 8;
        cfg.write_queue = 8;
        channel = std::make_unique<DramChannel>(eq, cfg, 128);
    }

    DramRequest
    read(unsigned bank, std::uint64_t row, Completion cb)
    {
        DramRequest r;
        r.bank = bank;
        r.row = row;
        r.type = AccessType::Read;
        r.on_done = cb;
        return r;
    }

    EventQueue eq;
    DramConfig cfg;
    std::unique_ptr<DramChannel> channel;
};

TEST_F(ChannelFixture, SingleReadLatency)
{
    Probe p;
    p.eq = &eq;
    ASSERT_TRUE(channel->enqueue(
        read(0, 1, Completion::bind<&Probe::stamp>(&p))));
    eq.run();
    // Row miss: latency 30 + burst 2.
    EXPECT_EQ(p.when, 32u);
    EXPECT_EQ(channel->readsIssued(), 1u);
}

TEST_F(ChannelFixture, BurstsSerializeOnTheBus)
{
    // 6 reads to the same row: issue start times must be spaced by
    // the 2-cycle burst occupancy regardless of latency overlap.
    Probe p;
    p.eq = &eq;
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(channel->enqueue(
            read(0, 1, Completion::bind<&Probe::stamp>(&p))));
    }
    eq.run();
    // First issues at 0 (miss, 30+2); the rest are row hits issued
    // every 2 cycles: last issue at 10, done 10+10+2 = 22... but the
    // first miss dominates: done at 32.
    EXPECT_GE(p.when, 30u);
    EXPECT_EQ(channel->busyCycles(), 12u);
    EXPECT_EQ(channel->readsIssued(), 6u);
}

/** Test helper: enqueues two follow-up reads when its first read
 * completes, exercising FR-FCFS while the bus is busy. */
struct FrFcfsDriver
{
    ChannelFixture *fx;
    Probe *probe;

    void onFirstDone()
    {
        // Two more while the first is in flight.
        ASSERT_TRUE(fx->channel->enqueue(fx->read(
            0, 9, Completion::bind<&Probe::push>(probe, 9))));
        ASSERT_TRUE(fx->channel->enqueue(fx->read(
            0, 1, Completion::bind<&Probe::push>(probe, 1))));
    }
};

TEST_F(ChannelFixture, FrFcfsPrefersRowHits)
{
    // Open row 1 in bank 0, then enqueue a conflicting request ahead
    // of a row-hit request: the hit must issue first.
    Probe p;
    p.eq = &eq;
    FrFcfsDriver driver{this, &p};
    ASSERT_TRUE(channel->enqueue(read(
        0, 1, Completion::bind<&FrFcfsDriver::onFirstDone>(&driver))));
    eq.run();
    ASSERT_EQ(p.order.size(), 2u);
    EXPECT_EQ(p.order[0], 1);  // row hit won
    EXPECT_EQ(p.order[1], 9);
    EXPECT_GT(channel->rowHitRate(), 0.0);
}

TEST_F(ChannelFixture, WritesArePostedAndDrainOpportunistically)
{
    Probe p;
    DramRequest w;
    w.bank = 0;
    w.row = 2;
    w.type = AccessType::Write;
    w.on_done = Completion::bind<&Probe::bump>(&p);
    ASSERT_TRUE(channel->enqueue(w));
    eq.run();
    EXPECT_EQ(p.count, 1);
    EXPECT_EQ(channel->writesIssued(), 1u);
}

/** Test helper: interleaves a write and a read while the bus is
 * busy with the first request. */
struct ReadPriorityDriver
{
    ChannelFixture *fx;
    Probe *probe;

    void onFirstDone()
    {
        DramRequest w;
        w.bank = 1;
        w.row = 7;
        w.type = AccessType::Write;
        w.on_done = Completion::bind<&Probe::push>(probe, 1);
        ASSERT_TRUE(fx->channel->enqueue(w));
        ASSERT_TRUE(fx->channel->enqueue(fx->read(
            2, 3, Completion::bind<&Probe::push>(probe, 2))));
    }
};

TEST_F(ChannelFixture, ReadsPrioritizedOverWritesBelowHighMark)
{
    Probe p;
    p.eq = &eq;
    ReadPriorityDriver driver{this, &p};
    // One write then one read, enqueued while the bus is busy with a
    // first read; the read must be served before the write.
    ASSERT_TRUE(channel->enqueue(read(
        0, 1,
        Completion::bind<&ReadPriorityDriver::onFirstDone>(&driver))));
    eq.run();
    ASSERT_EQ(p.order.size(), 2u);
    // Writes are posted (complete at issue), but issue order still
    // favors the read; its completion carries the read latency, so
    // check issue order via stats instead of completion order.
    EXPECT_EQ(channel->readsIssued(), 2u);
    EXPECT_EQ(channel->writesIssued(), 1u);
}

TEST_F(ChannelFixture, FullQueueRejectsAndRetries)
{
    // Fill the 8-entry read queue beyond capacity.
    Probe p;
    int rejected = 0;
    for (int i = 0; i < 12; ++i) {
        if (!channel->enqueue(
                read(0, 1, Completion::bind<&Probe::bump>(&p))))
            ++rejected;
    }
    EXPECT_GT(rejected, 0);
    bool retried = false;
    channel->setRetryCallback([&] { retried = true; });
    eq.run();
    EXPECT_TRUE(retried);
    EXPECT_EQ(p.count, 12 - rejected);
}

// ---- memory controller ----------------------------------------------

TEST(MemoryController, CountsAndCompletesAccesses)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.dram.channels = 4;
    MemoryController mc(eq, cfg);

    Probe p;
    for (unsigned i = 0; i < 32; ++i) {
        mc.access(static_cast<Addr>(i) * cfg.line_size,
                  AccessType::Read,
                  Completion::bind<&Probe::bump>(&p));
    }
    mc.access(0, AccessType::Write, {});
    eq.run();
    EXPECT_EQ(p.count, 32);
    EXPECT_EQ(mc.reads(), 32u);
    EXPECT_EQ(mc.writes(), 1u);
    EXPECT_EQ(mc.bytesTransferred(), 33u * cfg.line_size);
}

TEST(MemoryController, StagingAbsorbsQueueOverflow)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.dram.channels = 1;
    cfg.dram.read_queue = 4;
    MemoryController mc(eq, cfg);

    // Far more requests than the channel queue holds; all must
    // eventually complete without caller-visible rejections.
    Probe p;
    for (unsigned i = 0; i < 200; ++i) {
        mc.access(static_cast<Addr>(i) * cfg.line_size,
                  AccessType::Read,
                  Completion::bind<&Probe::bump>(&p));
    }
    eq.run();
    EXPECT_EQ(p.count, 200);
}

TEST(MemoryController, StreamingEnjoysRowLocality)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.dram.channels = 2;
    MemoryController mc(eq, cfg);
    for (unsigned i = 0; i < 256; ++i) {
        mc.access(static_cast<Addr>(i) * cfg.line_size,
                  AccessType::Read, {});
    }
    eq.run();
    EXPECT_GT(mc.rowHitRate(), 0.7);
}

TEST(MemoryController, BandwidthBoundThroughput)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.dram.channels = 1;
    cfg.dram.channel_bw = 64.0;  // 2 cycles per 128B line
    MemoryController mc(eq, cfg);
    Probe p;
    p.eq = &eq;
    for (unsigned i = 0; i < 512; ++i) {
        mc.access(static_cast<Addr>(i) * cfg.line_size,
                  AccessType::Read,
                  Completion::bind<&Probe::stamp>(&p));
    }
    eq.run();
    // 512 lines * 2 cycles = 1024 cycles of bus occupancy minimum.
    EXPECT_GE(p.when, 1024u);
    // And not wildly more (row hits dominate; generous upper bound).
    EXPECT_LE(p.when, 1400u);
}

} // namespace
} // namespace carve
