/** @file Unit tests for the named system presets. */

#include <gtest/gtest.h>

#include "core/system_preset.hh"

namespace carve {
namespace {

TEST(Presets, BaselineNumaGpu)
{
    const SystemConfig cfg = makePreset(Preset::NumaGpu,
                                        SystemConfig{});
    EXPECT_FALSE(cfg.rdc.enabled);
    EXPECT_EQ(cfg.numa.placement, PlacementPolicy::FirstTouch);
    EXPECT_EQ(cfg.numa.replication, ReplicationPolicy::None);
    EXPECT_FALSE(cfg.numa.migration);
    EXPECT_TRUE(cfg.numa.llc_caches_remote);
    cfg.validate();
}

TEST(Presets, SingleGpu)
{
    const SystemConfig cfg = makePreset(Preset::SingleGpu,
                                        SystemConfig{});
    EXPECT_EQ(cfg.num_gpus, 1u);
    cfg.validate();
}

TEST(Presets, CarveVariantsEnableRdcWithRightCoherence)
{
    EXPECT_EQ(makePreset(Preset::CarveNoCoherence, SystemConfig{})
                  .rdc.coherence,
              RdcCoherence::None);
    EXPECT_EQ(makePreset(Preset::CarveSwc, SystemConfig{})
                  .rdc.coherence,
              RdcCoherence::Software);
    EXPECT_EQ(makePreset(Preset::CarveHwc, SystemConfig{})
                  .rdc.coherence,
              RdcCoherence::HardwareVI);
    for (Preset p : {Preset::CarveNoCoherence, Preset::CarveSwc,
                     Preset::CarveHwc}) {
        EXPECT_TRUE(makePreset(p, SystemConfig{}).rdc.enabled);
    }
}

TEST(Presets, SoftwarePolicies)
{
    EXPECT_TRUE(makePreset(Preset::NumaGpuMigration, SystemConfig{})
                    .numa.migration);
    EXPECT_EQ(makePreset(Preset::NumaGpuReplRO, SystemConfig{})
                  .numa.replication,
              ReplicationPolicy::ReadOnly);
    EXPECT_EQ(makePreset(Preset::Ideal, SystemConfig{})
                  .numa.replication,
              ReplicationPolicy::All);
}

TEST(Presets, GeometryInheritedFromBase)
{
    SystemConfig base;
    base = base.scaled(8);
    base.link.gpu_gpu_bw = 32.0;
    const SystemConfig cfg = makePreset(Preset::CarveHwc, base);
    EXPECT_EQ(cfg.l2.size, base.l2.size);
    EXPECT_EQ(cfg.rdc.size, base.rdc.size);
    EXPECT_DOUBLE_EQ(cfg.link.gpu_gpu_bw, 32.0);
}

TEST(Presets, NamesAreStable)
{
    EXPECT_STREQ(presetName(Preset::NumaGpu), "NUMA-GPU");
    EXPECT_STREQ(presetName(Preset::CarveHwc), "CARVE-HWC");
    EXPECT_STREQ(presetName(Preset::Ideal), "Ideal-NUMA-GPU");
}

TEST(Presets, ComparisonListCoversFigureOrder)
{
    const auto all = comparisonPresets();
    EXPECT_EQ(all.size(), 7u);
    EXPECT_EQ(all.front(), Preset::NumaGpu);
    EXPECT_EQ(all.back(), Preset::Ideal);
}

} // namespace
} // namespace carve
