/** @file Unit tests for the IMST, GPU-VI engine and the software-
 * coherence (Table IV) cost model. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "coherence/gpu_vi.hh"
#include "coherence/imst.hh"
#include "coherence/software_coherence.hh"
#include "common/units.hh"

namespace carve {
namespace {

// ---- IMST -----------------------------------------------------------

TEST(Imst, UntouchedLinesAreUncached)
{
    Imst imst(0);
    EXPECT_EQ(imst.state(0x100), SharingState::Uncached);
    EXPECT_EQ(imst.owner(0x100), invalid_node);
}

TEST(Imst, FirstAccessBecomesPrivateToRequester)
{
    Imst imst(0);
    bool inval = false;
    imst.onAccess(0x100, 2, AccessType::Read, inval);
    EXPECT_EQ(imst.state(0x100), SharingState::Private);
    EXPECT_EQ(imst.owner(0x100), 2u);
    EXPECT_FALSE(inval);
}

TEST(Imst, OwnerWritesNeverBroadcast)
{
    Imst imst(0, 0.0);  // no demotion noise
    bool inval = false;
    imst.onAccess(0x100, 2, AccessType::Write, inval);
    for (int i = 0; i < 10; ++i) {
        imst.onAccess(0x100, 2, AccessType::Write, inval);
        EXPECT_FALSE(inval);
    }
    EXPECT_EQ(imst.filteredWrites(), 11u);
    EXPECT_EQ(imst.sharedWrites(), 0u);
}

TEST(Imst, SecondReaderMakesReadShared)
{
    Imst imst(0, 0.0);
    bool inval = false;
    imst.onAccess(0x100, 1, AccessType::Read, inval);
    imst.onAccess(0x100, 2, AccessType::Read, inval);
    EXPECT_EQ(imst.state(0x100), SharingState::ReadShared);
    EXPECT_FALSE(inval);
    EXPECT_EQ(imst.owner(0x100), invalid_node);
}

TEST(Imst, WriteToReadSharedBroadcastsAndEscalates)
{
    Imst imst(0, 0.0);
    bool inval = false;
    imst.onAccess(0x100, 1, AccessType::Read, inval);
    imst.onAccess(0x100, 2, AccessType::Read, inval);
    imst.onAccess(0x100, 1, AccessType::Write, inval);
    EXPECT_TRUE(inval);
    EXPECT_EQ(imst.state(0x100), SharingState::ReadWriteShared);
}

TEST(Imst, ForeignWriteToPrivateBroadcasts)
{
    Imst imst(0, 0.0);
    bool inval = false;
    imst.onAccess(0x100, 1, AccessType::Read, inval);
    imst.onAccess(0x100, 2, AccessType::Write, inval);
    EXPECT_TRUE(inval);  // node 1 may hold a stale copy
    EXPECT_EQ(imst.state(0x100), SharingState::ReadWriteShared);
}

TEST(Imst, ReadWriteSharedWritesKeepBroadcasting)
{
    Imst imst(0, 0.0);
    bool inval = false;
    imst.onAccess(0x100, 1, AccessType::Write, inval);
    imst.onAccess(0x100, 2, AccessType::Write, inval);
    for (int i = 0; i < 5; ++i) {
        imst.onAccess(0x100, 1, AccessType::Write, inval);
        EXPECT_TRUE(inval);
    }
    EXPECT_EQ(imst.sharedWrites(), 6u);
}

TEST(Imst, ProbabilisticDemotionRateIsRoughlyConfigured)
{
    Imst imst(0, 0.01, 42);
    bool inval = false;
    std::uint64_t demotions = 0;
    for (int i = 0; i < 40000; ++i) {
        // Re-establish the shared state whenever demotion fired.
        imst.onAccess(0x100, 1, AccessType::Read, inval);
        imst.onAccess(0x100, 2, AccessType::Read, inval);
        imst.onAccess(0x100, 1, AccessType::Write, inval);
    }
    demotions = imst.demotions();
    // ~1% of 40000 shared writes.
    EXPECT_GT(demotions, 250u);
    EXPECT_LT(demotions, 600u);
}

TEST(Imst, DemotionReturnsLineToWriter)
{
    Imst imst(0, 1.0);  // always demote
    bool inval = false;
    imst.onAccess(0x100, 1, AccessType::Read, inval);
    imst.onAccess(0x100, 2, AccessType::Read, inval);
    imst.onAccess(0x100, 3, AccessType::Write, inval);
    EXPECT_TRUE(inval);
    EXPECT_EQ(imst.state(0x100), SharingState::Private);
    EXPECT_EQ(imst.owner(0x100), 3u);
}

TEST(Imst, StateNames)
{
    EXPECT_STREQ(sharingStateName(SharingState::Uncached), "uncached");
    EXPECT_STREQ(sharingStateName(SharingState::Private), "private");
    EXPECT_STREQ(sharingStateName(SharingState::ReadShared),
                 "read-shared");
    EXPECT_STREQ(sharingStateName(SharingState::ReadWriteShared),
                 "read-write-shared");
}

// ---- GPU-VI ---------------------------------------------------------

struct GpuViFixture : public ::testing::Test
{
    GpuViFixture()
    {
        cfg.num_gpus = 4;
        ops.invalidate_at = [this](NodeId n, Addr line) {
            invalidated.emplace_back(n, line);
        };
        ops.send_ctrl = [this](NodeId s, NodeId d, unsigned bytes) {
            ctrl_packets.emplace_back(s, d);
            ctrl_bytes += bytes;
        };
    }

    SystemConfig cfg;
    CoherenceOps ops;
    std::vector<std::pair<NodeId, Addr>> invalidated;
    std::vector<std::pair<NodeId, NodeId>> ctrl_packets;
    std::uint64_t ctrl_bytes = 0;
};

TEST_F(GpuViFixture, PrivateWritesAreFiltered)
{
    GpuVi vi(cfg, 4, ops);
    vi.onRead(0, 2, 0x100);
    EXPECT_EQ(vi.onWrite(0, 2, 0x100), 0u);
    EXPECT_TRUE(invalidated.empty());
    EXPECT_EQ(vi.writesFiltered(), 1u);
}

TEST_F(GpuViFixture, SharedWriteBroadcastsToAllButWriter)
{
    GpuVi vi(cfg, 4, ops);
    vi.onRead(0, 1, 0x100);
    vi.onRead(0, 2, 0x100);
    const unsigned sent = vi.onWrite(0, 1, 0x100);
    EXPECT_EQ(sent, 3u);  // nodes 0, 2, 3
    EXPECT_EQ(invalidated.size(), 3u);
    for (const auto &[node, line] : invalidated) {
        EXPECT_NE(node, 1u);
        EXPECT_EQ(line, 0x100u);
    }
    // The home (node 0) drops its copy without a network packet.
    EXPECT_EQ(ctrl_packets.size(), 2u);
    EXPECT_EQ(ctrl_bytes, 2u * cfg.link.ctrl_packet_size);
}

TEST_F(GpuViFixture, UnfilteredModeBroadcastsEveryWrite)
{
    GpuVi vi(cfg, 4, ops, /* use_imst */ false);
    vi.onRead(0, 2, 0x100);  // line is private to 2
    EXPECT_EQ(vi.onWrite(0, 2, 0x100), 3u);
    EXPECT_FALSE(vi.usesImst());
}

TEST_F(GpuViFixture, InvalidateCountAccumulates)
{
    GpuVi vi(cfg, 4, ops);
    vi.onRead(1, 0, 0x200);
    vi.onRead(1, 2, 0x200);
    vi.onWrite(1, 0, 0x200);
    vi.onWrite(1, 2, 0x200);
    EXPECT_EQ(vi.invalidatesSent(), 6u);
    EXPECT_EQ(vi.imst(1).state(0x200), SharingState::ReadWriteShared);
}

// ---- software coherence cost model (Table IV) -----------------------

TEST(SwCoherence, TableIVAtPaperScale)
{
    SystemConfig cfg;  // Table III
    cfg.rdc.enabled = true;
    const SwCoherenceCost cost = computeSwCoherenceCost(cfg);

    // L2 invalidate: 8MB/128B lines over 16 banks ~= 4096 cycles
    // (4 us at 1 GHz -- Table IV "4us").
    EXPECT_EQ(cost.l2_invalidate, 4096u);

    // L2 flush: 8MB over 64 GB/s ~= 131072 cycles (~128 us).
    EXPECT_NEAR(static_cast<double>(cost.l2_flush), 131072.0, 1.0);

    // RDC invalidate: 2 x 2GB at 1 TB/s ~= 4.2M cycles (~4 ms; the
    // paper quotes 2 ms for a read-only pass -- same order).
    EXPECT_GT(cost.rdc_invalidate, 2'000'000u);
    EXPECT_LT(cost.rdc_invalidate, 8'000'000u);

    // RDC flush: 2GB over 64 GB/s ~= 33.5M cycles (~32 ms).
    EXPECT_NEAR(static_cast<double>(cost.rdc_flush), 33'554'432.0,
                1.0);

    // The paper's mechanisms make both RDC costs free.
    EXPECT_EQ(cost.rdc_invalidate_epoch, 0u);
    EXPECT_EQ(cost.rdc_flush_writethrough, 0u);
}

TEST(SwCoherence, RdcCostsScaleWithCarveSize)
{
    SystemConfig cfg;
    cfg.rdc.enabled = true;
    cfg.rdc.size = 1 * GiB;
    const SwCoherenceCost one = computeSwCoherenceCost(cfg);
    cfg.rdc.size = 4 * GiB;
    const SwCoherenceCost four = computeSwCoherenceCost(cfg);
    EXPECT_NEAR(static_cast<double>(four.rdc_flush),
                4.0 * static_cast<double>(one.rdc_flush), 4.0);
}

TEST(SwCoherence, MillisecondsVsMicroseconds)
{
    // The qualitative Table IV claim: LLC coherence costs live in the
    // microsecond range, naive RDC coherence in the millisecond range.
    SystemConfig cfg;
    cfg.rdc.enabled = true;
    const SwCoherenceCost cost = computeSwCoherenceCost(cfg);
    EXPECT_LT(cost.l2_invalidate, 1'000'000u);   // << 1 ms
    EXPECT_LT(cost.l2_flush, 1'000'000u);
    EXPECT_GT(cost.rdc_invalidate, 1'000'000u);  // >= 1 ms
    EXPECT_GT(cost.rdc_flush, 1'000'000u);
}

} // namespace
} // namespace carve
