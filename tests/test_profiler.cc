/** @file Unit tests for the sharing profiler (Figure 4/5 analysis). */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "numa/sharing_profiler.hh"

namespace carve {
namespace {

constexpr std::uint64_t page = 2 * MiB;
constexpr std::uint64_t line = 128;

TEST(Profiler, SingleNodeIsPrivate)
{
    SharingProfiler p(page, line);
    p.record(0x100, 0, AccessType::Read);
    p.record(0x100, 0, AccessType::Write);
    EXPECT_EQ(p.pageClass(0x100), SharingClass::Private);
    EXPECT_EQ(p.lineClass(0x100), SharingClass::Private);
    EXPECT_EQ(p.pageBreakdown().private_accesses, 2u);
    EXPECT_EQ(p.sharedPageFootprint(), 0u);
}

TEST(Profiler, TwoReadersAreReadOnlyShared)
{
    SharingProfiler p(page, line);
    p.record(0x100, 0, AccessType::Read);
    p.record(0x100, 1, AccessType::Read);
    EXPECT_EQ(p.pageClass(0x100), SharingClass::ReadOnlyShared);
    EXPECT_EQ(p.lineClass(0x100), SharingClass::ReadOnlyShared);
    EXPECT_EQ(p.sharedPageFootprint(), page);
    EXPECT_EQ(p.sharedLineFootprint(), line);
}

TEST(Profiler, SharedWithAnyWriteIsReadWriteShared)
{
    SharingProfiler p(page, line);
    p.record(0x100, 0, AccessType::Read);
    p.record(0x100, 1, AccessType::Write);
    EXPECT_EQ(p.pageClass(0x100), SharingClass::ReadWriteShared);
}

TEST(Profiler, FalseSharingDivergesAcrossGranularities)
{
    // The paper's core observation: two nodes write *different lines*
    // of the same page. The page is read-write shared; every line is
    // private.
    SharingProfiler p(page, line);
    p.record(0 * line, 0, AccessType::Write);
    p.record(1 * line, 1, AccessType::Write);
    p.record(2 * line, 0, AccessType::Read);
    p.record(3 * line, 1, AccessType::Read);
    EXPECT_EQ(p.pageClass(0), SharingClass::ReadWriteShared);
    EXPECT_EQ(p.lineClass(0 * line), SharingClass::Private);
    EXPECT_EQ(p.lineClass(1 * line), SharingClass::Private);

    const SharingBreakdown pages = p.pageBreakdown();
    const SharingBreakdown lines = p.lineBreakdown();
    EXPECT_DOUBLE_EQ(pages.fracReadWriteShared(), 1.0);
    EXPECT_DOUBLE_EQ(lines.fracPrivate(), 1.0);
    EXPECT_EQ(p.sharedPageFootprint(), page);
    EXPECT_EQ(p.sharedLineFootprint(), 0u);
}

TEST(Profiler, BreakdownWeightsByAccessCount)
{
    SharingProfiler p(page, line);
    // 3 accesses to a private page, 1 to a shared one.
    for (int i = 0; i < 3; ++i)
        p.record(0, 0, AccessType::Read);
    p.record(10 * page, 0, AccessType::Read);
    p.record(10 * page, 1, AccessType::Read);
    const SharingBreakdown b = p.pageBreakdown();
    EXPECT_EQ(b.private_accesses, 3u);
    EXPECT_EQ(b.read_only_shared, 2u);
    EXPECT_DOUBLE_EQ(b.fracPrivate(), 0.6);
    EXPECT_DOUBLE_EQ(b.fracReadOnlyShared(), 0.4);
}

TEST(Profiler, FootprintCountsDistinctTouchedPages)
{
    SharingProfiler p(page, line);
    p.record(0, 0, AccessType::Read);
    p.record(page + 5, 0, AccessType::Read);
    p.record(7 * page, 1, AccessType::Read);
    EXPECT_EQ(p.totalPageFootprint(), 3 * page);
    EXPECT_EQ(p.trackedPages(), 3u);
}

TEST(Profiler, DisabledGranularitiesTrackNothing)
{
    SharingProfiler p(page, line, /* pages */ true, /* lines */ false);
    p.record(0x100, 0, AccessType::Read);
    EXPECT_EQ(p.trackedLines(), 0u);
    EXPECT_EQ(p.trackedPages(), 1u);
    EXPECT_EQ(p.lineBreakdown().total(), 0u);
}

TEST(Profiler, UntouchedAddressDefaultsToPrivate)
{
    SharingProfiler p(page, line);
    EXPECT_EQ(p.pageClass(0xDEAD000), SharingClass::Private);
}

TEST(Profiler, EmptyBreakdownFractionsAreZero)
{
    SharingBreakdown b;
    EXPECT_DOUBLE_EQ(b.fracPrivate(), 0.0);
    EXPECT_DOUBLE_EQ(b.fracReadOnlyShared(), 0.0);
    EXPECT_DOUBLE_EQ(b.fracReadWriteShared(), 0.0);
}

} // namespace
} // namespace carve
