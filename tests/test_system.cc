/** @file Integration tests: whole-system simulations on a miniature
 * 4-GPU machine, checking the paper's qualitative orderings. */

#include <gtest/gtest.h>

#include "core/multi_gpu_system.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "core/system_preset.hh"
#include "sim_test_util.hh"

namespace carve {
namespace {

using test::miniConfig;
using test::miniWorkload;

RunOptions
fastOpts()
{
    RunOptions opt;
    opt.max_cycles = 50'000'000;
    return opt;
}

SimResult
runPresetJob(Preset preset, const SystemConfig &base,
             const WorkloadParams &params, const RunOptions &opt)
{
    return run(makePresetJob(preset, base, params, opt));
}

SimResult
runConfig(const SystemConfig &cfg, const WorkloadParams &params,
          const std::string &label, const RunOptions &opt)
{
    return run(SimJob{cfg, params, label, opt});
}

TEST(System, CompletesAndIssuesEveryInstruction)
{
    const WorkloadParams p = miniWorkload(RegionKind::PrivateStream);
    const SimResult r = runPresetJob(Preset::NumaGpu, miniConfig(), p,
                                  fastOpts());
    EXPECT_EQ(r.warp_insts,
              p.kernels * p.ctas * p.warps_per_cta * p.insts_per_warp);
    EXPECT_GT(r.cycles, 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.2);
    const SimResult a = runPresetJob(Preset::CarveHwc, miniConfig(), p,
                                  fastOpts());
    const SimResult b = runPresetJob(Preset::CarveHwc, miniConfig(), p,
                                  fastOpts());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.traffic.remote_reads, b.traffic.remote_reads);
    EXPECT_EQ(a.hw_invalidates, b.hw_invalidates);
}

TEST(System, SingleGpuHasNoRemoteTraffic)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.3);
    const SimResult r = runPresetJob(Preset::SingleGpu, miniConfig(), p,
                                  fastOpts());
    EXPECT_EQ(r.traffic.remote_reads, 0u);
    EXPECT_EQ(r.traffic.remote_writes, 0u);
    EXPECT_EQ(r.gpu_gpu_bytes, 0u);
    EXPECT_DOUBLE_EQ(r.frac_remote, 0.0);
}

TEST(System, IdealHasNoRemoteTrafficOnFourGpus)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.3);
    const SimResult r = runPresetJob(Preset::Ideal, miniConfig(), p,
                                  fastOpts());
    EXPECT_EQ(r.traffic.remote_reads, 0u);
    EXPECT_EQ(r.traffic.remote_writes, 0u);
}

TEST(System, MultiGpuBeatsSingleGpu)
{
    const WorkloadParams p = miniWorkload(RegionKind::PrivateStream,
                                          0.2);
    const SimResult one = runPresetJob(Preset::SingleGpu, miniConfig(),
                                    p, fastOpts());
    const SimResult four = runPresetJob(Preset::Ideal, miniConfig(), p,
                                     fastOpts());
    EXPECT_GT(speedupOver(one, four), 1.5);
}

TEST(System, IdealFastestNumaSlowestCarveBetween)
{
    // The headline ordering of Figures 9/13 on a falsely-shared
    // iterative workload.
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.1, 4);
    const SimResult numa = runPresetJob(Preset::NumaGpu, miniConfig(), p,
                                     fastOpts());
    const SimResult carve = runPresetJob(Preset::CarveHwc, miniConfig(),
                                      p, fastOpts());
    const SimResult ideal = runPresetJob(Preset::Ideal, miniConfig(), p,
                                      fastOpts());
    EXPECT_LT(ideal.cycles, carve.cycles);
    EXPECT_LT(carve.cycles, numa.cycles);
}

TEST(System, CarveSlashesRemoteTrafficOnIterativeSharing)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.05, 4);
    const SimResult numa = runPresetJob(Preset::NumaGpu, miniConfig(), p,
                                     fastOpts());
    const SimResult carve = runPresetJob(Preset::CarveHwc, miniConfig(),
                                      p, fastOpts());
    EXPECT_GT(numa.frac_remote, 0.3);
    EXPECT_LT(carve.frac_remote, numa.frac_remote / 2.0);
    EXPECT_GT(carve.rdc_hits, 0u);
}

TEST(System, ReplicationFixesReadOnlySharing)
{
    const WorkloadParams p = miniWorkload(RegionKind::Lookup, 0.0, 2);
    const SimResult numa = runPresetJob(Preset::NumaGpu, miniConfig(), p,
                                     fastOpts());
    const SimResult repl = runPresetJob(Preset::NumaGpuReplRO,
                                     miniConfig(), p, fastOpts());
    EXPECT_GT(repl.replications, 0u);
    EXPECT_EQ(repl.collapses, 0u);
    EXPECT_LT(repl.frac_remote, numa.frac_remote);
    EXPECT_LT(repl.cycles, numa.cycles);
    EXPECT_GT(repl.capacity_pressure, 1.0);
}

TEST(System, ReplicationFailsOnReadWriteSharing)
{
    // Writes poison the pages: replication must do roughly nothing.
    const WorkloadParams p = miniWorkload(RegionKind::Lookup, 0.2, 2);
    const SimResult repl = runPresetJob(Preset::NumaGpuReplRO,
                                     miniConfig(), p, fastOpts());
    const SimResult carve = runPresetJob(Preset::CarveHwc, miniConfig(),
                                      p, fastOpts());
    EXPECT_LT(carve.cycles, repl.cycles);
}

TEST(System, SoftwareCoherenceForfeitsInterKernelLocality)
{
    // Iterative workload: CARVE-SWC flushes the RDC every boundary,
    // CARVE-HWC retains it (Figure 11).
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.05, 6);
    const SimResult swc = runPresetJob(Preset::CarveSwc, miniConfig(), p,
                                    fastOpts());
    const SimResult hwc = runPresetJob(Preset::CarveHwc, miniConfig(), p,
                                    fastOpts());
    const SimResult noc = runPresetJob(Preset::CarveNoCoherence,
                                    miniConfig(), p, fastOpts());
    EXPECT_GT(swc.cycles, hwc.cycles);
    // Hardware coherence performs close to the free-coherence bound.
    EXPECT_LT(static_cast<double>(hwc.cycles),
              1.15 * static_cast<double>(noc.cycles));
    // And the RDC hit rate difference is the mechanism.
    const double swc_hit = static_cast<double>(swc.rdc_hits) /
        static_cast<double>(swc.rdc_hits + swc.rdc_misses);
    const double hwc_hit = static_cast<double>(hwc.rdc_hits) /
        static_cast<double>(hwc.rdc_hits + hwc.rdc_misses);
    EXPECT_GT(hwc_hit, swc_hit);
}

TEST(System, HardwareCoherenceSendsInvalidatesOnTrueSharing)
{
    const WorkloadParams p = miniWorkload(RegionKind::Atomic, 0.5, 2,
                                          256 * KiB);
    const SimResult r = runPresetJob(Preset::CarveHwc, miniConfig(), p,
                                  fastOpts());
    EXPECT_GT(r.hw_invalidates, 0u);
}

TEST(System, MigrationMovesPrivateRemotePages)
{
    // Round-robin placement guarantees remote private pages, which
    // migration then repatriates.
    SystemConfig cfg = makePreset(Preset::NumaGpuMigration,
                                  miniConfig());
    cfg.numa.placement = PlacementPolicy::RoundRobin;
    cfg.numa.migration_threshold = 8;
    const WorkloadParams p =
        miniWorkload(RegionKind::PrivateStream, 0.2, 3);
    const SimResult r =
        runConfig(cfg, p, "mig", fastOpts());
    EXPECT_GT(r.migrations, 0u);
}

TEST(System, SpillSlowsDownWhenGpuMemoryIsFull)
{
    // Table V(b) scenario: the application fills GPU memory, so
    // pages spilled by the carve-out cannot migrate back in and are
    // serviced over the 32 GB/s CPU link for the whole run.
    SystemConfig cfg = makePreset(Preset::CarveHwc, miniConfig());
    cfg.numa.um_migration_threshold = 1u << 30;  // memory "full"
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.1, 3);
    const SimResult base = runConfig(cfg, p, "base", fastOpts());
    cfg.numa.spill_fraction = 0.4;
    const SimResult spill = runConfig(cfg, p, "spill", fastOpts());
    EXPECT_GT(spill.cycles, base.cycles);
    EXPECT_GT(spill.traffic.cpu_reads + spill.traffic.cpu_writes, 0u);
    EXPECT_GT(spill.cpu_gpu_bytes, 0u);
}

TEST(System, UnifiedMemoryMigratesHotSpilledPagesWhenRoomExists)
{
    SystemConfig cfg = makePreset(Preset::CarveHwc, miniConfig());
    cfg.numa.spill_fraction = 0.4;
    cfg.numa.um_migration_threshold = 8;
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.1, 3);
    const SimResult r = runConfig(cfg, p, "um", fastOpts());
    EXPECT_GT(r.um_migrations, 0u);
}

TEST(System, SharingProfileSeesFalseSharing)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.15, 2);
    const SimResult r = runPresetJob(Preset::NumaGpu, miniConfig(), p,
                                  fastOpts());
    // Pages overwhelmingly read-write shared; lines overwhelmingly
    // private (Figure 4).
    EXPECT_GT(r.page_sharing.fracReadWriteShared(), 0.8);
    EXPECT_GT(r.line_sharing.fracPrivate(), 0.8);
    EXPECT_GT(r.shared_page_footprint, r.shared_line_footprint);
}

TEST(System, LinkBandwidthSensitivity)
{
    // NUMA-GPU tracks link bandwidth; CARVE barely notices (Fig 14).
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.05, 4);
    SystemConfig slow = miniConfig();
    slow.link.gpu_gpu_bw = 4.0;
    SystemConfig fast = miniConfig();
    fast.link.gpu_gpu_bw = 256.0;

    const SimResult numa_slow =
        runConfig(makePreset(Preset::NumaGpu, slow), p, "ns",
                      fastOpts());
    const SimResult numa_fast =
        runConfig(makePreset(Preset::NumaGpu, fast), p, "nf",
                      fastOpts());
    const SimResult carve_slow =
        runConfig(makePreset(Preset::CarveHwc, slow), p, "cs",
                      fastOpts());
    const SimResult carve_fast =
        runConfig(makePreset(Preset::CarveHwc, fast), p, "cf",
                      fastOpts());

    const double numa_gain = speedupOver(numa_slow, numa_fast);
    const double carve_gain = speedupOver(carve_slow, carve_fast);
    EXPECT_GT(numa_gain, 1.2);
    EXPECT_LT(carve_gain, numa_gain);
}

TEST(System, RdcSizeSweepIsMonotoneOnBigWorkingSets)
{
    const WorkloadParams p = miniWorkload(RegionKind::Lookup, 0.02, 2,
                                          32 * MiB);
    SystemConfig small = makePreset(Preset::CarveHwc, miniConfig());
    small.rdc.size = 2 * MiB;
    SystemConfig big = makePreset(Preset::CarveHwc, miniConfig());
    big.rdc.size = 64 * MiB;
    const SimResult rs = runConfig(small, p, "s", fastOpts());
    const SimResult rb = runConfig(big, p, "b", fastOpts());
    const double small_hit = static_cast<double>(rs.rdc_hits) /
        static_cast<double>(rs.rdc_hits + rs.rdc_misses);
    const double big_hit = static_cast<double>(rb.rdc_hits) /
        static_cast<double>(rb.rdc_hits + rb.rdc_misses);
    EXPECT_GT(big_hit, small_hit);
    EXPECT_LE(rb.cycles, rs.cycles);
}

TEST(System, WriteThroughTracksWriteBackClosely)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.1, 4);
    SystemConfig wt = makePreset(Preset::CarveHwc, miniConfig());
    SystemConfig wb = wt;
    wb.rdc.write_policy = RdcWritePolicy::WriteBack;
    const SimResult rwt = runConfig(wt, p, "wt", fastOpts());
    const SimResult rwb = runConfig(wb, p, "wb", fastOpts());
    const double ratio = static_cast<double>(rwt.cycles) /
        static_cast<double>(rwb.cycles);
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(System, ReportCollectsConsistentTotals)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.1, 2);
    SyntheticWorkload wl(p, 128, 1);
    const SystemConfig cfg = makePreset(Preset::CarveHwc,
                                        miniConfig());
    MultiGpuSystem sys(cfg, wl);
    sys.run();
    EXPECT_TRUE(sys.finished());
    const SimResult r = collectResult(sys, "mini", "CARVE-HWC");
    EXPECT_EQ(r.warp_insts, wl.totalInstructions());
    EXPECT_GT(r.traffic.total(), 0u);
    EXPECT_GE(r.frac_remote, 0.0);
    EXPECT_LE(r.frac_remote, 1.0);
    EXPECT_EQ(r.cycles, sys.finishTime());
}

TEST(System, GeomeanAndSpeedupHelpers)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    SimResult a, b;
    a.cycles = 200;
    b.cycles = 100;
    EXPECT_DOUBLE_EQ(speedupOver(a, b), 2.0);
}

TEST(SystemDeathTest, MaxCyclesGuardTrips)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::PrivateStream, 0.0, 2);
    RunOptions opt;
    opt.max_cycles = 10;
    // Historical contract: a watchdog trip is fatal by default.
    EXPECT_EXIT(runConfig(miniConfig(), p, "t", opt),
                ::testing::ExitedWithCode(1), "did not converge");
}

TEST(System, MaxCyclesGuardSurfacesWhenTolerated)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::PrivateStream, 0.0, 2);

    // The system itself reports rather than terminates...
    SyntheticWorkload wl(p, 128, 1);
    MultiGpuSystem sys(miniConfig(), wl);
    sys.run(10);
    EXPECT_FALSE(sys.finished());
    EXPECT_TRUE(sys.watchdogTripped());

    // ...and batch drivers can opt into a partial result.
    RunOptions opt;
    opt.max_cycles = 10;
    opt.tolerate_watchdog = true;
    const SimResult r = runConfig(miniConfig(), p, "t", opt);
    EXPECT_TRUE(r.watchdog_tripped);
}

} // namespace
} // namespace carve
