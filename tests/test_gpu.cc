/** @file Unit tests for the GPU building blocks: coalescer, CTA
 * scheduler and the SM warp engine (with scripted hooks). */

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "gpu/coalescer.hh"
#include "gpu/cta_scheduler.hh"
#include "gpu/sm.hh"

namespace carve {
namespace {

// ---- coalescer ------------------------------------------------------

TEST(Coalescer, UnitStrideWarpTouchesOneLine)
{
    std::array<Addr, 32> lanes;
    for (unsigned i = 0; i < 32; ++i)
        lanes[i] = 0x1000 + i * 4;  // 32 x 4B == one 128B line
    WarpInstruction inst;
    const CoalesceResult r = coalesce(lanes, 128, inst);
    EXPECT_EQ(r.num_lines, 1u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_EQ(inst.lines[0], 0x1000u);
}

TEST(Coalescer, StridedAccessSpansLines)
{
    std::array<Addr, 4> lanes{0, 128, 256, 384};
    WarpInstruction inst;
    const CoalesceResult r = coalesce(lanes, 128, inst);
    EXPECT_EQ(r.num_lines, 4u);
}

TEST(Coalescer, FullyDivergentDropsOverflow)
{
    std::array<Addr, 32> lanes;
    for (unsigned i = 0; i < 32; ++i)
        lanes[i] = static_cast<Addr>(i) * 4096;
    WarpInstruction inst;
    const CoalesceResult r = coalesce(lanes, 128, inst);
    EXPECT_EQ(r.num_lines, max_lines_per_inst);
    EXPECT_EQ(r.dropped, 32 - max_lines_per_inst);
}

TEST(Coalescer, DuplicatesAreMerged)
{
    std::array<Addr, 6> lanes{0, 4, 8, 128, 132, 0};
    WarpInstruction inst;
    const CoalesceResult r = coalesce(lanes, 128, inst);
    EXPECT_EQ(r.num_lines, 2u);
}

// ---- cta scheduler --------------------------------------------------

TEST(CtaScheduler, ContiguousEvenBatches)
{
    CtaScheduler s(4);
    s.launchKernel(100);
    EXPECT_EQ(s.batchStart(0), 0u);
    EXPECT_EQ(s.batchEnd(0), 25u);
    EXPECT_EQ(s.batchStart(3), 75u);
    EXPECT_EQ(s.batchEnd(3), 100u);
    EXPECT_EQ(s.remaining(2), 25u);
}

TEST(CtaScheduler, RemainderGoesToLowGpus)
{
    CtaScheduler s(4);
    s.launchKernel(10);  // 3,3,2,2
    EXPECT_EQ(s.remaining(0), 3u);
    EXPECT_EQ(s.remaining(1), 3u);
    EXPECT_EQ(s.remaining(2), 2u);
    EXPECT_EQ(s.remaining(3), 2u);
    // Batches stay contiguous and complete.
    EXPECT_EQ(s.batchEnd(0), s.batchStart(1));
    EXPECT_EQ(s.batchEnd(3), 10u);
}

TEST(CtaScheduler, NextCtaWalksBatchInOrder)
{
    CtaScheduler s(2);
    s.launchKernel(4);
    EXPECT_EQ(s.nextCta(1).value(), 2u);
    EXPECT_EQ(s.nextCta(1).value(), 3u);
    EXPECT_FALSE(s.nextCta(1).has_value());
    EXPECT_EQ(s.nextCta(0).value(), 0u);
}

TEST(CtaScheduler, KernelDoneAfterAllRetire)
{
    CtaScheduler s(2);
    s.launchKernel(3);
    EXPECT_FALSE(s.kernelDone());
    s.retireCta(0);
    s.retireCta(0);
    s.retireCta(1);
    EXPECT_TRUE(s.kernelDone());
    EXPECT_EQ(s.retiredCtas(), 3u);
}

TEST(CtaScheduler, RelaunchResetsState)
{
    CtaScheduler s(2);
    s.launchKernel(2);
    s.nextCta(0);
    s.retireCta(0);
    s.launchKernel(6);
    EXPECT_EQ(s.remaining(0), 3u);
    EXPECT_EQ(s.retiredCtas(), 0u);
    EXPECT_FALSE(s.kernelDone());
}

TEST(CtaScheduler, SingleGpuOwnsEverything)
{
    CtaScheduler s(1);
    s.launchKernel(7);
    EXPECT_EQ(s.remaining(0), 7u);
}

TEST(CtaScheduler, ZeroCtasIsImmediatelyDone)
{
    CtaScheduler s(4);
    s.launchKernel(0);
    EXPECT_TRUE(s.kernelDone());
    EXPECT_FALSE(s.nextCta(0).has_value());
}

// ---- SM -------------------------------------------------------------

/** Scripted workload: each warp runs a fixed number of reads/writes
 * with configurable addresses. */
class ScriptedWorkload : public Workload
{
  public:
    std::string nm = "scripted";
    unsigned kernels = 1;
    std::uint64_t ctas = 4;
    unsigned wpc = 2;
    std::uint64_t ipw = 4;
    AccessType type = AccessType::Read;
    bool same_line = false;

    const std::string &name() const override { return nm; }
    unsigned numKernels() const override { return kernels; }
    std::uint64_t numCtas(KernelId) const override { return ctas; }
    unsigned warpsPerCta() const override { return wpc; }
    std::uint64_t instsPerWarp(KernelId) const override { return ipw; }

    void
    instruction(KernelId, CtaId cta, WarpId w, std::uint64_t idx,
                WarpInstruction &out) const override
    {
        out.type = type;
        out.compute_cycles = 2;
        out.num_lines = 1;
        out.lines[0] = same_line
            ? 0x1000
            : 0x100000 + (cta * 1024 + w * 64 + idx) * 128;
    }
};

struct SmFixture : public ::testing::Test
{
    SmFixture()
    {
        cfg.core.max_warps_per_sm = 8;
        cfg.l1.mshrs = 4;

        hooks.access_l2 = [this](Addr, AccessType t,
                                 Sm::Callback done) {
            ++l2_accesses;
            if (isWrite(t)) {
                ++l2_writes;
                return;
            }
            // Fixed-latency backing store.
            eq.scheduleAfter(50, std::move(done));
        };
        hooks.record_access = [this](Addr, AccessType) {
            ++recorded;
        };
        hooks.translate = [](SmId, Addr) { return Cycle{5}; };
        hooks.cta_retired = [this](SmId, CtaId cta) {
            retired.push_back(cta);
        };
    }

    Sm &
    makeSm()
    {
        sm = std::make_unique<Sm>(eq, cfg, 0, hooks);
        sm->setWorkload(&wl);
        return *sm;
    }

    EventQueue eq;
    SystemConfig cfg;
    Sm::Hooks hooks;
    ScriptedWorkload wl;
    std::unique_ptr<Sm> sm;
    unsigned l2_accesses = 0;
    unsigned l2_writes = 0;
    unsigned recorded = 0;
    std::vector<CtaId> retired;
};

TEST_F(SmFixture, RunsCtaToCompletion)
{
    Sm &s = makeSm();
    EXPECT_TRUE(s.tryStartCta(0, 7));
    eq.run();
    ASSERT_EQ(retired.size(), 1u);
    EXPECT_EQ(retired[0], 7u);
    EXPECT_EQ(s.instsIssued(), wl.wpc * wl.ipw);
    EXPECT_EQ(recorded, wl.wpc * wl.ipw);
    EXPECT_TRUE(s.idle());
}

TEST_F(SmFixture, RejectsCtaWhenSlotsExhausted)
{
    Sm &s = makeSm();
    EXPECT_TRUE(s.tryStartCta(0, 0));   // 2 warps
    EXPECT_TRUE(s.tryStartCta(0, 1));
    EXPECT_TRUE(s.tryStartCta(0, 2));
    EXPECT_TRUE(s.tryStartCta(0, 3));   // 8 of 8 slots
    EXPECT_FALSE(s.tryStartCta(0, 4));
    EXPECT_EQ(s.freeWarpSlots(), 0u);
    eq.run();
    EXPECT_EQ(retired.size(), 4u);
}

TEST_F(SmFixture, L1CapturesReuse)
{
    wl.same_line = true;  // everyone hammers one line
    Sm &s = makeSm();
    s.tryStartCta(0, 0);
    eq.run();
    // One fill from L2; everything else hits in L1 (or merges).
    EXPECT_EQ(l2_accesses, 1u);
    EXPECT_GT(s.l1().hits(), 0u);
}

TEST_F(SmFixture, WritesArePostedAndDoNotBlock)
{
    wl.type = AccessType::Write;
    Sm &s = makeSm();
    s.tryStartCta(0, 0);
    eq.run();
    EXPECT_EQ(l2_writes, wl.wpc * wl.ipw);
    EXPECT_EQ(s.writeInsts(), wl.wpc * wl.ipw);
    EXPECT_EQ(s.readInsts(), 0u);
    EXPECT_EQ(retired.size(), 1u);
}

TEST_F(SmFixture, DistinctLinesMissIndividually)
{
    Sm &s = makeSm();
    s.tryStartCta(0, 0);
    eq.run();
    EXPECT_EQ(l2_accesses, wl.wpc * wl.ipw);
    EXPECT_EQ(s.l1().hits(), 0u);
}

TEST_F(SmFixture, InvalidateL1DropsReuse)
{
    wl.same_line = true;
    Sm &s = makeSm();
    s.tryStartCta(0, 0);
    eq.run();
    s.invalidateL1();
    const unsigned l2_before = l2_accesses;
    s.tryStartCta(0, 1);
    eq.run();
    EXPECT_EQ(l2_accesses, l2_before + 1);  // refetched once
}

TEST_F(SmFixture, MshrPressureStallsButCompletes)
{
    cfg.l1.mshrs = 1;  // brutal
    Sm &s = makeSm();
    s.tryStartCta(0, 0);
    s.tryStartCta(0, 1);
    eq.run();
    EXPECT_EQ(retired.size(), 2u);
    EXPECT_GT(s.mshrStalls(), 0u);
}

TEST_F(SmFixture, ZeroInstructionCtaRetiresImmediately)
{
    wl.ipw = 0;
    Sm &s = makeSm();
    s.tryStartCta(0, 3);
    eq.run();
    ASSERT_EQ(retired.size(), 1u);
    EXPECT_EQ(s.instsIssued(), 0u);
}

} // namespace
} // namespace carve
