/** @file Unit tests for tag arrays, replacement, the cache component
 * and the MSHR file. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "cache/replacement.hh"
#include "cache/tag_array.hh"
#include "common/config.hh"

namespace carve {
namespace {

// ---- replacer -------------------------------------------------------

TEST(Replacer, PrefersInvalidWays)
{
    Replacer r(ReplPolicy::LRU);
    std::vector<std::uint8_t> valid{1, 1, 0, 1};
    std::vector<std::uint64_t> use{10, 20, 0, 5};
    EXPECT_EQ(r.victim(valid, use), 2u);
}

TEST(Replacer, LruPicksOldest)
{
    Replacer r(ReplPolicy::LRU);
    std::vector<std::uint8_t> valid{1, 1, 1, 1};
    std::vector<std::uint64_t> use{10, 3, 20, 5};
    EXPECT_EQ(r.victim(valid, use), 1u);
}

TEST(Replacer, RandomStaysInRange)
{
    Replacer r(ReplPolicy::Random, 3);
    std::vector<std::uint8_t> valid{1, 1, 1, 1};
    std::vector<std::uint64_t> use{1, 1, 1, 1};
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(r.victim(valid, use), 4u);
}

// ---- tag array ------------------------------------------------------

TEST(TagArray, GeometryFromSize)
{
    TagArray t(8192, 4, 128);  // 16 sets x 4 ways
    EXPECT_EQ(t.numSets(), 16u);
    EXPECT_EQ(t.numWays(), 4u);
}

TEST(TagArray, MissThenHitAfterInsert)
{
    TagArray t(8192, 4, 128);
    EXPECT_EQ(t.lookup(0x1000), TagArray::no_line);
    t.insert(0x1000, false);
    EXPECT_NE(t.lookup(0x1000), TagArray::no_line);
    // Sub-line offsets resolve to the same line.
    EXPECT_NE(t.lookup(0x1000 + 127), TagArray::no_line);
    EXPECT_EQ(t.lookup(0x1000 + 128), TagArray::no_line);
}

TEST(TagArray, LruEvictionOrder)
{
    TagArray t(4 * 128, 4, 128);  // one set, 4 ways
    t.insert(0 * 128, false);
    t.insert(1 * 128, false);
    t.insert(2 * 128, false);
    t.insert(3 * 128, false);
    // Touch line 0 so line 1 becomes LRU.
    t.lookup(0);
    auto ev = t.insert(4 * 128, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->line_addr, 1u * 128);
    EXPECT_NE(t.lookup(0), TagArray::no_line);
}

TEST(TagArray, EvictionReportsDirtyAndRemote)
{
    TagArray t(128, 1, 128);  // a single line
    t.insert(0, true);
    t.setDirty(t.lookup(0), true);
    auto ev = t.insert(128, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_TRUE(ev->remote);
}

TEST(TagArray, InvalidateSingleLine)
{
    TagArray t(8192, 4, 128);
    t.insert(0x2000, false);
    EXPECT_TRUE(t.invalidate(0x2000));
    EXPECT_FALSE(t.invalidate(0x2000));
    EXPECT_EQ(t.lookup(0x2000), TagArray::no_line);
}

TEST(TagArray, InvalidateRemoteKeepsLocalLines)
{
    TagArray t(8192, 4, 128);
    t.insert(0x0000, false);
    t.insert(0x1000, true);
    t.insert(0x2000, true);
    EXPECT_EQ(t.invalidateRemote(), 2u);
    EXPECT_NE(t.lookup(0x0000), TagArray::no_line);
    EXPECT_EQ(t.lookup(0x1000), TagArray::no_line);
    EXPECT_EQ(t.validCount(), 1u);
}

TEST(TagArray, InvalidateAll)
{
    TagArray t(8192, 4, 128);
    for (Addr a = 0; a < 20 * 128; a += 128)
        t.insert(a, false);
    EXPECT_EQ(t.invalidateAll(), 20u);
    EXPECT_EQ(t.validCount(), 0u);
}

TEST(TagArray, ForEachDirtyVisitsOnlyDirty)
{
    TagArray t(8192, 4, 128);
    t.insert(0, false);
    t.insert(128, false);
    t.setDirty(t.lookup(128), true);
    unsigned visited = 0;
    t.forEachDirty([&](TagArray::LineIdx line) {
        ++visited;
        t.setDirty(line, false);
    });
    EXPECT_EQ(visited, 1u);
    t.forEachDirty([&](TagArray::LineIdx) { ++visited; });
    EXPECT_EQ(visited, 1u);
}

TEST(TagArrayDeathTest, DoubleInsertPanics)
{
    TagArray t(8192, 4, 128);
    t.insert(0x1000, false);
    EXPECT_DEATH(t.insert(0x1000, false), "assert");
}

// ---- cache ----------------------------------------------------------

TEST(Cache, CountsHitsAndMisses)
{
    CacheConfig cc{8192, 4, 10, 8};
    Cache c("l", cc, 128);
    EXPECT_FALSE(c.readProbe(0));
    c.fill(0, false);
    EXPECT_TRUE(c.readProbe(0));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
    EXPECT_EQ(c.hitLatency(), 10u);
}

TEST(Cache, WriteProbeUpdatesWithoutAllocating)
{
    CacheConfig cc{8192, 4, 10, 8};
    Cache c("l", cc, 128);
    EXPECT_FALSE(c.writeProbe(0x100, false));  // miss: no allocate
    EXPECT_FALSE(c.contains(0x100));
    c.fill(0x100, false);
    EXPECT_TRUE(c.writeProbe(0x100, true));
    // Dirty was requested: the resident line carries it.
    EXPECT_TRUE(c.tags().isDirty(c.tags().peek(0x100)));
}

TEST(Cache, DoubleFillIsIdempotent)
{
    CacheConfig cc{8192, 4, 10, 8};
    Cache c("l", cc, 128);
    c.fill(0x200, true);
    auto ev = c.fill(0x200, true);  // racing MSHR fill
    EXPECT_FALSE(ev.has_value());
    EXPECT_EQ(c.tags().validCount(), 1u);
}

TEST(Cache, EvictionCounter)
{
    CacheConfig cc{2 * 128, 2, 1, 8};  // one set, two ways
    Cache c("l", cc, 128);
    c.fill(0, false);
    c.fill(128, false);
    c.fill(256, false);
    EXPECT_EQ(c.evictions(), 1u);
}

// ---- mshr -----------------------------------------------------------

/** Test helper: bindable member-function targets for Completion. */
struct CallLog
{
    std::vector<int> order;
    int count = 0;

    void hit() { ++count; }
    void push(std::uint64_t v)
    {
        order.push_back(static_cast<int>(v));
    }
};

/** Test helper: a waiter that re-allocates when fired. */
struct Reallocator
{
    MshrFile *m;
    MshrOutcome out = MshrOutcome::Full;

    void run() { out = m->allocate(0x200, Completion()); }
};

TEST(Mshr, FirstAllocationIsNewEntry)
{
    MshrFile m(4);
    CallLog log;
    EXPECT_EQ(m.allocate(0x100, Completion::bind<&CallLog::hit>(&log)),
              MshrOutcome::NewEntry);
    EXPECT_TRUE(m.outstanding(0x100));
    EXPECT_EQ(m.size(), 1u);
}

TEST(Mshr, SecondAllocationMerges)
{
    MshrFile m(4);
    CallLog log;
    const Completion cb = Completion::bind<&CallLog::hit>(&log);
    m.allocate(0x100, cb);
    EXPECT_EQ(m.allocate(0x100, cb), MshrOutcome::Merged);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.merges(), 1u);
}

TEST(Mshr, FullRejectsNewLinesButMergesExisting)
{
    MshrFile m(2);
    CallLog log;
    const Completion cb = Completion::bind<&CallLog::hit>(&log);
    m.allocate(0x100, cb);
    m.allocate(0x200, cb);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.allocate(0x300, cb), MshrOutcome::Full);
    EXPECT_EQ(m.allocate(0x100, cb), MshrOutcome::Merged);
    EXPECT_EQ(m.rejections(), 1u);
}

TEST(Mshr, CompleteFiresAllWaitersInOrder)
{
    MshrFile m(4);
    CallLog log;
    m.allocate(0x100, Completion::bind<&CallLog::push>(&log, 1));
    m.allocate(0x100, Completion::bind<&CallLog::push>(&log, 2));
    m.allocate(0x100, Completion::bind<&CallLog::push>(&log, 3));
    EXPECT_EQ(m.complete(0x100), 3u);
    EXPECT_EQ(log.order, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(m.outstanding(0x100));
}

TEST(Mshr, CallbackMayAllocateDuringComplete)
{
    MshrFile m(2);
    Reallocator reallocator{&m, MshrOutcome::Full};
    m.allocate(0x100,
               Completion::bind<&Reallocator::run>(&reallocator));
    m.complete(0x100);
    EXPECT_EQ(reallocator.out, MshrOutcome::NewEntry);
    EXPECT_TRUE(m.outstanding(0x200));
}

TEST(MshrDeathTest, CompletingUntrackedLinePanics)
{
    MshrFile m(2);
    EXPECT_DEATH(m.complete(0xDEAD), "untracked");
}

// ---- mshr wake-list -------------------------------------------------

/** Test helper: a parked requester that retries its line on wake,
 * re-parks while the file stays full, and logs its service order. */
struct ParkedRequester
{
    MshrFile *m;
    CallLog *log;
    Addr line;
    int id;
    int wakes = 0;

    void
    retry()
    {
        ++wakes;
        if (m->full() && !m->outstanding(line)) {
            m->park(Completion::bind<&ParkedRequester::retry>(this));
            return;
        }
        EXPECT_NE(m->allocate(line, Completion()), MshrOutcome::Full);
        log->push(static_cast<std::uint64_t>(id));
    }
};

TEST(MshrWakeList, WakeOrderIsFifoAcrossDrainRounds)
{
    EventQueue eq;
    MshrFile m(1, nullptr, &eq);
    CallLog log;
    m.allocate(0x100, Completion());
    ParkedRequester a{&m, &log, 0x200, 1};
    ParkedRequester b{&m, &log, 0x300, 2};
    ParkedRequester c{&m, &log, 0x400, 3};
    m.park(Completion::bind<&ParkedRequester::retry>(&a));
    m.park(Completion::bind<&ParkedRequester::retry>(&b));
    m.park(Completion::bind<&ParkedRequester::retry>(&c));
    EXPECT_EQ(m.parked(), 3u);

    // One register frees per round, so each drain wakes exactly the
    // head waiter; the rest keep their FIFO position for later rounds.
    m.complete(0x100);
    eq.run();
    EXPECT_EQ(log.order, (std::vector<int>{1}));
    EXPECT_EQ(m.parked(), 2u);
    m.complete(0x200);
    eq.run();
    m.complete(0x300);
    eq.run();
    EXPECT_EQ(log.order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(m.parked(), 0u);
}

TEST(MshrWakeList, MergesDoNotStarveParkedWaiters)
{
    EventQueue eq;
    MshrFile m(1, nullptr, &eq);
    CallLog log;
    m.allocate(0x100, Completion::bind<&CallLog::push>(&log, 1));
    ParkedRequester a{&m, &log, 0x200, 3};
    m.park(Completion::bind<&ParkedRequester::retry>(&a));
    // A merge behind the outstanding line consumes no register, so it
    // cannot steal the freed slot from the parked waiter.
    EXPECT_EQ(m.allocate(0x100,
                         Completion::bind<&CallLog::push>(&log, 2)),
              MshrOutcome::Merged);
    m.complete(0x100);
    eq.run();
    EXPECT_EQ(log.order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(m.outstanding(0x200));
}

TEST(MshrWakeList, DrainWakesOnlyAsManyWaitersAsFreeRegisters)
{
    EventQueue eq;
    MshrFile m(2, nullptr, &eq);
    CallLog log;
    m.allocate(0x100, Completion());
    m.allocate(0x200, Completion());
    ParkedRequester a{&m, &log, 0x300, 1};
    ParkedRequester b{&m, &log, 0x400, 2};
    ParkedRequester c{&m, &log, 0x500, 3};
    m.park(Completion::bind<&ParkedRequester::retry>(&a));
    m.park(Completion::bind<&ParkedRequester::retry>(&b));
    m.park(Completion::bind<&ParkedRequester::retry>(&c));

    // Two same-tick completions coalesce into one drain event. The
    // drain frees two registers, so it wakes exactly the first two
    // waiters; the third is never woken just to re-park.
    m.complete(0x100);
    m.complete(0x200);
    eq.run();
    EXPECT_EQ(a.wakes, 1);
    EXPECT_EQ(b.wakes, 1);
    EXPECT_EQ(c.wakes, 0);
    EXPECT_EQ(log.order, (std::vector<int>{1, 2}));
    EXPECT_EQ(m.parked(), 1u);
    EXPECT_EQ(m.parks(), 3u);  // three initial parks, no re-parks

    m.complete(0x300);
    eq.run();
    EXPECT_EQ(log.order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(m.parked(), 0u);
}

TEST(MshrWakeList, ParkWithoutQueueIsFatal)
{
    MshrFile m(1);
    CallLog log;
    EXPECT_EXIT(m.park(Completion::bind<&CallLog::hit>(&log)),
                ::testing::ExitedWithCode(1), "park");
}

} // namespace
} // namespace carve
