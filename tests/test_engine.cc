/** @file Per-GPU event-domain engine: serial-vs-parallel byte
 * identity over the full preset grid, the conservative lookahead
 * window, and sim_threads validation.
 *
 * The contract under test is the PR's headline: SimEngine::Serial and
 * SimEngine::Parallel run the same windowed algorithm, so the entire
 * stat tree — every counter in every component — must serialize to
 * identical bytes at any thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/domain_engine.hh"
#include "core/simulator.hh"
#include "core/system_preset.hh"
#include "harness/stats_json.hh"
#include "workloads/suite.hh"

namespace carve {
namespace {

/** Suite scale for the grid: small enough that 8 presets x 6
 * workloads x 4 engine configurations stay tier-1 sized. */
SuiteOptions
gridSuite()
{
    SuiteOptions suite;
    suite.memory_scale = 32;
    suite.duration = 0.02;
    return suite;
}

SimJob
gridJob(Preset preset, const std::string &workload)
{
    const SystemConfig base =
        SystemConfig{}.scaled(gridSuite().memory_scale);
    RunOptions opt;
    opt.max_cycles = 200'000'000;
    return makePresetJob(preset, base,
                         suiteWorkload(workload, gridSuite()), opt);
}

std::string
statBytes(const SimJob &job)
{
    return harness::statTreeToJson(run(job).stat_tree).dump();
}

/** Thread counts to exercise, clamped to this host (run() refuses
 * oversubscription) and deduplicated. */
std::vector<unsigned>
threadCounts()
{
    const unsigned hw = std::max(
        1u, std::thread::hardware_concurrency());
    std::set<unsigned> counts;
    for (unsigned n : {1u, 2u, 4u})
        counts.insert(std::min(n, hw));
    return {counts.begin(), counts.end()};
}

TEST(EngineIdentity, SerialVsParallelAcrossThePresetGrid)
{
    // Every preset (all coherence/replication/migration mechanisms)
    // crossed with six workloads spanning the suite's sharing
    // patterns: interleaved false sharing + atomics, read-only
    // lookups, halo exchange, broadcast weights, private streaming,
    // and graph-style skewed atomics.
    const std::vector<Preset> presets = {
        Preset::SingleGpu,        Preset::NumaGpu,
        Preset::NumaGpuMigration, Preset::NumaGpuReplRO,
        Preset::CarveNoCoherence, Preset::CarveSwc,
        Preset::CarveHwc,         Preset::Ideal,
    };
    const std::vector<std::string> workloads = {
        "Lulesh", "MCB", "CoMD", "AlexNet", "stream-triad", "SSSP",
    };
    const std::vector<unsigned> threads = threadCounts();

    for (const Preset preset : presets) {
        for (const std::string &wl : workloads) {
            SimJob job = gridJob(preset, wl);
            job.options.engine = SimEngine::Serial;
            const std::string serial = statBytes(job);
            ASSERT_GT(serial.size(), 100u)
                << presetName(preset) << "/" << wl;

            job.options.engine = SimEngine::Parallel;
            for (const unsigned n : threads) {
                job.options.sim_threads = n;
                EXPECT_EQ(serial, statBytes(job))
                    << presetName(preset) << "/" << wl
                    << " diverged at sim_threads=" << n;
            }
        }
    }
}

TEST(EngineIdentity, MshrSaturatedWakeListsMatchAcrossThreads)
{
    // Tiny MSHR files keep all three wake-lists (L1, L2, RDC) hot:
    // every fill drains parked requests through the owning domain's
    // queue. Wake order must be a pure function of (tick, seq), so
    // the stat tree stays byte-identical at every thread count.
    SimJob job = gridJob(Preset::CarveHwc, "Lulesh");
    job.config.l1.mshrs = 2;
    job.config.l2.mshrs = 4;
    job.config.rdc.mshr_entries = 4;
    job.preset_label = "carve-mshr-sat";

    job.options.engine = SimEngine::Serial;
    const std::string serial = statBytes(job);
    ASSERT_GT(serial.size(), 100u);

    job.options.engine = SimEngine::Parallel;
    for (const unsigned n : threadCounts()) {
        job.options.sim_threads = n;
        EXPECT_EQ(serial, statBytes(job))
            << "wake-list run diverged at sim_threads=" << n;
    }
}

TEST(EngineIdentity, SpillJobWithUnifiedMemoryMatches)
{
    // CPU-resident pages route through the system domain; make sure
    // that path (not exercised by the presets above) is identical too.
    SimJob job = gridJob(Preset::CarveHwc, "Lulesh");
    job.config.numa.spill_fraction = 0.4;
    job.config.numa.um_migration_threshold = 8;
    job.preset_label = "carve-spill";

    job.options.engine = SimEngine::Serial;
    const std::string serial = statBytes(job);
    job.options.engine = SimEngine::Parallel;
    job.options.sim_threads = threadCounts().back();
    EXPECT_EQ(serial, statBytes(job));
}

// ---- telemetry ----------------------------------------------------

TEST(EngineTelemetry, TelemetryOffIsByteIdenticalToDefault)
{
    // The master switch off must be provably free: the stat tree of
    // a run with an explicit telemetry::Options{} equals one that
    // never mentions telemetry, byte for byte (same guarantee the
    // trace layer makes).
    SimJob plain = gridJob(Preset::CarveHwc, "Lulesh");
    const std::string baseline = statBytes(plain);

    SimJob off = gridJob(Preset::CarveHwc, "Lulesh");
    off.options.telemetry = telemetry::Options{};
    EXPECT_EQ(baseline, statBytes(off));
}

TEST(EngineTelemetry, TelemetryOnIsIdenticalAcrossEnginesAndThreads)
{
    // With host_timing off, every telemetry sample is a pure
    // function of the simulated schedule: histograms (bucket
    // contents and rendered percentiles) must serialize identically
    // for the serial engine and the parallel engine at every thread
    // count, across a preset spread covering the RDC, replication
    // and coherence paths.
    const std::vector<Preset> presets = {
        Preset::NumaGpu, Preset::NumaGpuReplRO, Preset::CarveHwc};
    for (const Preset preset : presets) {
        SimJob job = gridJob(preset, "Lulesh");
        job.options.telemetry.enabled = true;
        job.options.engine = SimEngine::Serial;
        const std::string serial = statBytes(job);
        ASSERT_GT(serial.size(), 100u) << presetName(preset);
        // Telemetry stats actually made it into the tree.
        EXPECT_NE(serial.find("park_duration"), std::string::npos);
        EXPECT_NE(serial.find("engine.windows"), std::string::npos);

        job.options.engine = SimEngine::Parallel;
        for (const unsigned n : threadCounts()) {
            job.options.sim_threads = n;
            EXPECT_EQ(serial, statBytes(job))
                << presetName(preset)
                << " telemetry diverged at sim_threads=" << n;
        }
    }
}

TEST(EngineTelemetry, HostTimingPopulatesBarrierWaitsDeterministicallyNamed)
{
    // host_timing adds samples to engine.barrier_wait_ns (values are
    // wall-clock, so only the name set and count semantics are
    // checkable): parallel runs must record one sample per worker
    // barrier crossing, serial runs keep the histogram registered but
    // empty, and the stat NAME set must not depend on engine,
    // threads, or host_timing — only on telemetry.enabled.
    SimJob job = gridJob(Preset::CarveHwc, "Lulesh");
    job.options.telemetry.enabled = true;
    job.options.telemetry.host_timing = true;

    job.options.engine = SimEngine::Serial;
    const SimResult serial = run(job);
    job.options.engine = SimEngine::Parallel;
    job.options.sim_threads = threadCounts().back();
    const SimResult parallel = run(job);

    const auto names = [](const SimResult &r) {
        std::set<std::string> out;
        for (const auto &st : r.stat_tree)
            out.insert(st.name);
        return out;
    };
    EXPECT_EQ(names(serial), names(parallel));

    const auto statValue = [](const SimResult &r,
                              const std::string &name) {
        for (const auto &st : r.stat_tree) {
            if (st.name == name)
                return st.u64;
        }
        return std::uint64_t{0};
    };
    // The serial engine has no window barriers to wait at.
    EXPECT_EQ(statValue(serial, "engine.barrier_wait_ns.count"), 0u);
    // The parallel engine crosses two barriers (start + done) per
    // window per worker; with real multi-worker execution (a single
    // worker degenerates to the serial loop) and any windows run,
    // the count must be nonzero.
    if (threadCounts().back() > 1 &&
        statValue(parallel, "engine.windows") > 0) {
        EXPECT_GT(statValue(parallel,
                            "engine.barrier_wait_ns.count"),
                  0u);
    }
}

// ---- lookahead window ---------------------------------------------

TEST(DomainEngine, LookaheadWindowTracksMinimumLinkLatency)
{
    SystemConfig cfg;
    cfg.link.latency = 120;
    const Cycle wide = DomainEngine::lookaheadWindow(cfg);
    cfg.link.latency = 10;
    const Cycle narrow = DomainEngine::lookaheadWindow(cfg);
    EXPECT_LT(narrow, wide);
    // The window must cover at least the one-cycle send offset plus
    // the wire latency: an event posted at the last tick of a window
    // can never land inside a window another domain is executing.
    EXPECT_GE(narrow, cfg.link.latency + 1);
    cfg.link.latency = 0;
    EXPECT_GE(DomainEngine::lookaheadWindow(cfg), 1u);
}

// ---- sim_threads validation ---------------------------------------

TEST(EngineDeathTest, ZeroSimThreadsIsACleanConfigError)
{
    SimJob job = gridJob(Preset::NumaGpu, "Lulesh");
    job.options.engine = SimEngine::Parallel;
    job.options.sim_threads = 0;
    EXPECT_EXIT(run(job), ::testing::ExitedWithCode(1),
                "sim_threads must be >= 1");
}

TEST(EngineDeathTest, OversubscribedSimThreadsIsACleanConfigError)
{
    if (std::thread::hardware_concurrency() == 0)
        GTEST_SKIP() << "hardware_concurrency unknown on this host";
    SimJob job = gridJob(Preset::NumaGpu, "Lulesh");
    job.options.engine = SimEngine::Parallel;
    job.options.sim_threads = 100000;
    EXPECT_EXIT(run(job), ::testing::ExitedWithCode(1),
                "exceeds this host's");
}

TEST(Config, EngineOverridesRoundTrip)
{
    SystemConfig cfg;
    cfg.applyOverride("engine", "parallel");
    cfg.applyOverride("sim_threads", "4");
    EXPECT_EQ(cfg.engine, SimEngine::Parallel);
    EXPECT_EQ(cfg.sim_threads, 4u);

    bool saw_engine = false, saw_threads = false;
    for (const ConfigOverride &o : cfg.toOverrides()) {
        if (o.key == "engine") {
            saw_engine = true;
            EXPECT_EQ(o.value, "parallel");
        }
        if (o.key == "sim_threads") {
            saw_threads = true;
            EXPECT_EQ(o.value, "4");
        }
    }
    EXPECT_TRUE(saw_engine);
    EXPECT_TRUE(saw_threads);
}

} // namespace
} // namespace carve
