/** @file Unit tests for the two-level TLB hierarchy. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "tlb/tlb.hh"

namespace carve {
namespace {

struct TlbFixture : public ::testing::Test
{
    TlbFixture()
    {
        cfg.l1_entries = 4;
        cfg.l2_entries = 32;
        cfg.l1_latency = 1;
        cfg.l2_latency = 20;
        cfg.walk_latency = 200;
    }

    TlbConfig cfg;
    static constexpr std::uint64_t page = 2 * 1024 * 1024;
};

TEST_F(TlbFixture, ColdAccessWalks)
{
    TlbHierarchy tlb(cfg, 2, page);
    const TlbResult r = tlb.translate(0, 0x1000);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_FALSE(r.l2_hit);
    EXPECT_EQ(r.latency, 1u + 20u + 200u);
    EXPECT_EQ(tlb.walks(), 1u);
}

TEST_F(TlbFixture, RepeatAccessHitsL1)
{
    TlbHierarchy tlb(cfg, 2, page);
    tlb.translate(0, 0x1000);
    const TlbResult r = tlb.translate(0, 0x2000);  // same 2MB page
    EXPECT_TRUE(r.l1_hit);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
}

TEST_F(TlbFixture, OtherSmHitsSharedL2)
{
    TlbHierarchy tlb(cfg, 2, page);
    tlb.translate(0, 0x1000);
    const TlbResult r = tlb.translate(1, 0x1000);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_TRUE(r.l2_hit);
    EXPECT_EQ(r.latency, 1u + 20u);
    EXPECT_EQ(tlb.l2Hits(), 1u);
}

TEST_F(TlbFixture, CapacityEvictionCausesRewalk)
{
    TlbHierarchy tlb(cfg, 1, page);
    // Blow out the 4-entry L1 and the 32-entry L2.
    for (Addr p = 0; p < 40; ++p)
        tlb.translate(0, p * page);
    const std::uint64_t walks_before = tlb.walks();
    tlb.translate(0, 0);  // long evicted from both levels
    EXPECT_EQ(tlb.walks(), walks_before + 1);
}

TEST_F(TlbFixture, ShootdownDropsAllCopies)
{
    TlbHierarchy tlb(cfg, 3, page);
    tlb.translate(0, 0x1000);
    tlb.translate(1, 0x1000);
    tlb.translate(2, 0x1000);
    // Copies: 3 L1s + 1 shared L2.
    EXPECT_EQ(tlb.shootdown(0x1000), 4u);
    const TlbResult r = tlb.translate(0, 0x1000);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_FALSE(r.l2_hit);
}

TEST_F(TlbFixture, ShootdownOfUnmappedPageIsZero)
{
    TlbHierarchy tlb(cfg, 1, page);
    EXPECT_EQ(tlb.shootdown(0xABC00000), 0u);
}

} // namespace
} // namespace carve
