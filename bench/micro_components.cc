/** @file google-benchmark micro-benchmarks of the hot simulator
 * components: event queue, tag array, Alloy RDC structure, DRAM
 * channel, IMST and the synthetic trace generator. These bound the
 * simulator's own performance (simulation throughput), not the
 * modeled system's. */

#include <benchmark/benchmark.h>

#include "cache/tag_array.hh"
#include "coherence/imst.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dramcache/alloy_cache.hh"
#include "mem/memory_controller.hh"
#include "workloads/suite.hh"

namespace {

using namespace carve;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Cycle>(i % 37), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TagArrayLookupHit(benchmark::State &state)
{
    TagArray tags(1 * MiB, 16, 128);
    for (Addr a = 0; a < 4096; ++a)
        tags.insert(a * 128, false);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tags.lookup((a % 4096) * 128));
        ++a;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayLookupHit);

void
BM_TagArrayInsertEvict(benchmark::State &state)
{
    TagArray tags(64 * KiB, 8, 128);
    Addr a = 0;
    for (auto _ : state) {
        if (tags.lookup(a * 128) == TagArray::no_line)
            tags.insert(a * 128, false);
        ++a;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayInsertEvict);

void
BM_AlloyLookupInsert(benchmark::State &state)
{
    AlloyCache alloy(256 * MiB, 128);
    Rng rng(1);
    for (auto _ : state) {
        const Addr line = rng.below(1 << 22) * 128;
        if (alloy.lookup(line, 0) != RdcLookup::Hit)
            alloy.insert(line, 0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlloyLookupInsert);

void
BM_DramChannelThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        SystemConfig cfg;
        cfg.dram.channels = 1;
        MemoryController mc(eq, cfg);
        for (unsigned i = 0; i < 1024; ++i) {
            mc.access(static_cast<Addr>(i) * 128, AccessType::Read,
                      {});
        }
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DramChannelThroughput);

void
BM_ImstTransitions(benchmark::State &state)
{
    Imst imst(0, 0.01, 5);
    Rng rng(2);
    bool inval = false;
    for (auto _ : state) {
        const Addr line = rng.below(1 << 16) * 128;
        const NodeId node = static_cast<NodeId>(rng.below(4));
        const AccessType t = rng.chance(0.2) ? AccessType::Write
                                             : AccessType::Read;
        imst.onAccess(line, node, t, inval);
        benchmark::DoNotOptimize(inval);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImstTransitions);

void
BM_TraceGeneration(benchmark::State &state)
{
    const WorkloadParams params = suiteWorkload("Lulesh");
    SyntheticWorkload wl(params, 128, 1);
    WarpInstruction inst;
    std::uint64_t i = 0;
    for (auto _ : state) {
        wl.instruction(0, i % params.ctas,
                       static_cast<WarpId>(i % 8), i, inst);
        benchmark::DoNotOptimize(inst.lines[0]);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
