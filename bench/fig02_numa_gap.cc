/** @file Figure 2: performance of NUMA-GPU and NUMA-GPU + read-only
 * page replication relative to an ideal system that replicates ALL
 * shared pages. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    const BenchContext ctx = makeContext();
    banner("Figure 2: NUMA-GPU performance gap vs ideal paging",
           "8 workloads show negligible NUMA bottleneck; ~3 are fixed "
           "by read-only replication; the rest lose 20-80% and need "
           "read-write handling",
           ctx);

    std::printf("%-14s %10s %10s   %s\n", "workload", "NUMA-GPU",
                "+Repl-RO", "(perf relative to ideal, 1.0 == ideal)");

    std::vector<double> numa_rel, repl_rel;
    for (const auto &wl : benchWorkloads(ctx)) {
        const SimResult ideal = run(ctx, Preset::Ideal, wl);
        const SimResult numa = run(ctx, Preset::NumaGpu, wl);
        const SimResult repl = run(ctx, Preset::NumaGpuReplRO, wl);
        const double rn = speedupOver(numa, ideal) > 0
            ? static_cast<double>(ideal.cycles) /
                static_cast<double>(numa.cycles)
            : 0.0;
        const double rr = static_cast<double>(ideal.cycles) /
            static_cast<double>(repl.cycles);
        numa_rel.push_back(rn);
        repl_rel.push_back(rr);
        std::printf("%-14s %10.2f %10.2f\n", wl.name.c_str(), rn, rr);
    }
    std::printf("%-14s %10.2f %10.2f\n", "geomean",
                geomean(numa_rel), geomean(repl_rel));
    return 0;
}
