/** @file Ablations on the RDC design choices called out in
 * DESIGN.md / Section IV of the paper:
 *
 *  1. write-through vs write-back RDC (paper: within 1%);
 *  2. MAP-I hit predictor on the RandAccess outlier (paper: fixes
 *     the ~10% miss-serialization loss);
 *  3. IMST broadcast filtering vs unfiltered GPU-VI (paper: IMST
 *     makes write-invalidate traffic negligible).
 */

#include "bench_util.hh"

#include "core/multi_gpu_system.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext();
    banner("Ablations: RDC write policy, hit predictor, IMST",
           "WT ~= WB; predictor rescues RandAccess; IMST filters "
           "nearly all invalidate broadcasts",
           ctx);

    // ---- 1. write-through vs write-back -----------------------------
    std::printf("[1] RDC write policy (cycles, lower is better)\n");
    std::printf("%-14s %12s %12s %8s\n", "workload", "write-thru",
                "write-back", "ratio");
    for (const char *name : {"Lulesh", "HPGMG", "Euler", "SSSP"}) {
        const WorkloadParams wl = suiteWorkload(name, ctx.suite);
        ctx.base.rdc.write_policy = RdcWritePolicy::WriteThrough;
        const SimResult wt = run(ctx, Preset::CarveHwc, wl);
        ctx.base.rdc.write_policy = RdcWritePolicy::WriteBack;
        const SimResult wb = run(ctx, Preset::CarveHwc, wl);
        std::printf("%-14s %12llu %12llu %8.3f\n", name,
                    (unsigned long long)wt.cycles,
                    (unsigned long long)wb.cycles,
                    static_cast<double>(wt.cycles) /
                        static_cast<double>(wb.cycles));
    }
    ctx.base.rdc.write_policy = RdcWritePolicy::WriteThrough;

    // ---- 2. hit predictor on miss-heavy workloads -------------------
    std::printf("\n[2] MAP-I hit predictor (cycles)\n");
    std::printf("%-14s %12s %12s %10s\n", "workload", "no-pred",
                "predictor", "speedup");
    for (const char *name : {"RandAccess", "XSBench", "Lulesh"}) {
        const WorkloadParams wl = suiteWorkload(name, ctx.suite);
        ctx.base.rdc.hit_predictor = false;
        const SimResult off = run(ctx, Preset::CarveHwc, wl);
        ctx.base.rdc.hit_predictor = true;
        const SimResult on = run(ctx, Preset::CarveHwc, wl);
        std::printf("%-14s %12llu %12llu %9.3fx\n", name,
                    (unsigned long long)off.cycles,
                    (unsigned long long)on.cycles,
                    speedupOver(off, on));
    }
    ctx.base.rdc.hit_predictor = false;

    // ---- 3. IMST filtering ------------------------------------------
    std::printf("\n[3] IMST write-invalidate filtering "
                "(CARVE-HWC)\n");
    std::printf("%-14s %14s %14s\n", "workload", "inval w/ IMST",
                "inval w/o IMST");
    for (const char *name : {"Lulesh", "SSSP", "HPGMG"}) {
        const WorkloadParams params = suiteWorkload(name, ctx.suite);
        const SystemConfig cfg =
            makePreset(Preset::CarveHwc, ctx.base);
        // With IMST (the normal path).
        const SimResult with = run(ctx, Preset::CarveHwc, params);
        // Without: count what unfiltered GPU-VI would broadcast by
        // replaying the same write stream through a filterless IMST:
        // every post-LLC write broadcasts to 3 peers.
        const std::uint64_t writes = with.traffic.local_writes +
            with.traffic.remote_writes;
        const std::uint64_t unfiltered = writes * (cfg.num_gpus - 1);
        std::printf("%-14s %14llu %14llu\n", name,
                    (unsigned long long)with.hw_invalidates,
                    (unsigned long long)unfiltered);
    }
    return 0;
}
