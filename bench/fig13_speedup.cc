/** @file Figure 13: end-to-end speedup over a single GPU for
 * NUMA-GPU, NUMA-GPU + read-only replication, NUMA-GPU + CARVE, and
 * the ideal replicate-all system.
 *
 * Runs the whole preset x workload grid through the parallel
 * experiment harness (CARVE_BENCH_THREADS workers); the printed table
 * is identical to the historical serial loop. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    const BenchContext ctx = makeContext();
    banner("Figure 13: speedup over 1 GPU (4-GPU system)",
           "NUMA-GPU ~2.5x, +Repl-RO ~2.75x, CARVE ~3.6x, ideal "
           "~3.7x",
           ctx);

    std::printf("%-14s %9s %9s %9s %9s\n", "workload", "NUMA-GPU",
                "+Repl-RO", "CARVE", "Ideal");

    const std::vector<Preset> presets = {
        Preset::SingleGpu, Preset::NumaGpu, Preset::NumaGpuReplRO,
        Preset::CarveHwc, Preset::Ideal};
    const auto workloads = benchWorkloads(ctx);
    const auto grid = runGrid(ctx, presets, workloads);

    std::vector<double> vn, vr, vc, vi;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const SimResult &one = grid[w][0];
        vn.push_back(speedupOver(one, grid[w][1]));
        vr.push_back(speedupOver(one, grid[w][2]));
        vc.push_back(speedupOver(one, grid[w][3]));
        vi.push_back(speedupOver(one, grid[w][4]));
        std::printf("%-14s %8.2fx %8.2fx %8.2fx %8.2fx\n",
                    workloads[w].name.c_str(), vn.back(), vr.back(),
                    vc.back(), vi.back());
    }
    std::printf("%-14s %8.2fx %8.2fx %8.2fx %8.2fx\n", "geomean",
                geomean(vn), geomean(vr), geomean(vc), geomean(vi));
    return 0;
}
