/** @file Figure 13: end-to-end speedup over a single GPU for
 * NUMA-GPU, NUMA-GPU + read-only replication, NUMA-GPU + CARVE, and
 * the ideal replicate-all system. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    const BenchContext ctx = makeContext();
    banner("Figure 13: speedup over 1 GPU (4-GPU system)",
           "NUMA-GPU ~2.5x, +Repl-RO ~2.75x, CARVE ~3.6x, ideal "
           "~3.7x",
           ctx);

    std::printf("%-14s %9s %9s %9s %9s\n", "workload", "NUMA-GPU",
                "+Repl-RO", "CARVE", "Ideal");

    std::vector<double> vn, vr, vc, vi;
    for (const auto &wl : benchWorkloads(ctx)) {
        const SimResult one = run(ctx, Preset::SingleGpu, wl);
        const SimResult numa = run(ctx, Preset::NumaGpu, wl);
        const SimResult repl = run(ctx, Preset::NumaGpuReplRO, wl);
        const SimResult carve = run(ctx, Preset::CarveHwc, wl);
        const SimResult ideal = run(ctx, Preset::Ideal, wl);
        vn.push_back(speedupOver(one, numa));
        vr.push_back(speedupOver(one, repl));
        vc.push_back(speedupOver(one, carve));
        vi.push_back(speedupOver(one, ideal));
        std::printf("%-14s %8.2fx %8.2fx %8.2fx %8.2fx\n",
                    wl.name.c_str(), vn.back(), vr.back(), vc.back(),
                    vi.back());
    }
    std::printf("%-14s %8.2fx %8.2fx %8.2fx %8.2fx\n", "geomean",
                geomean(vn), geomean(vr), geomean(vc), geomean(vi));
    return 0;
}
