/** @file Table IV: worst-case kernel-launch delay under software
 * coherence, for the on-chip LLC vs a 2 GB Remote Data Cache — the
 * analysis motivating the epoch counter and write-through RDC.
 * Computed at paper-exact (unscaled) Table III parameters. */

#include <cstdio>

#include "coherence/software_coherence.hh"
#include "common/config.hh"

int
main()
{
    using namespace carve;

    SystemConfig cfg;  // paper-exact Table III
    cfg.rdc.enabled = true;
    const SwCoherenceCost cost = computeSwCoherenceCost(cfg);

    const auto us = [](Cycle c) {
        return static_cast<double>(c) / 1000.0;  // 1 GHz
    };

    std::printf("==============================================\n");
    std::printf("Table IV: kernel-launch delay under software\n");
    std::printf("coherence (paper-exact sizes: 8MB LLC, 2GB RDC)\n");
    std::printf("==============================================\n\n");
    std::printf("%-22s %14s %14s\n", "", "L2 Cache (8MB)",
                "RDC (2GB)");
    std::printf("%-22s %12.1fus %12.1fms\n", "Cache Invalidate",
                us(cost.l2_invalidate),
                us(cost.rdc_invalidate) / 1000.0);
    std::printf("%-22s %12.1fus %12.1fms\n", "Flush Dirty",
                us(cost.l2_flush), us(cost.rdc_flush) / 1000.0);
    std::printf("\nwith the paper's mechanisms:\n");
    std::printf("%-22s %14s %12.1fms  (epoch counter)\n",
                "Cache Invalidate", "-",
                us(cost.rdc_invalidate_epoch) / 1000.0);
    std::printf("%-22s %14s %12.1fms  (write-through RDC)\n",
                "Flush Dirty", "-",
                us(cost.rdc_flush_writethrough) / 1000.0);
    std::printf("\npaper: invalidate 4us vs 2ms=>0ms; flush "
                "8-128us vs 32ms=>0ms\n");
    return 0;
}
