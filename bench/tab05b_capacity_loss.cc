/** @file Table V(b): slowdown from the CARVE carve-out when the
 * application needs all of GPU memory, so the displaced fraction of
 * the footprint spills to CPU system memory under Unified Memory.
 *
 * GPU memory is modeled as full (no free frames for UM to migrate
 * spilled pages back in), matching the paper's hand-optimized
 * footprint scenario. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext();
    banner("Table V(b): slowdown due to carve-out capacity loss",
           "geomean slowdown 1.00/0.96/0.94/0.83/0.76 for carve-outs "
           "of 0/1.5/3.12/6.25/12.5% of GPU memory",
           ctx);

    // The application fills GPU memory: spilled pages cannot migrate
    // back in.
    ctx.base.numa.um_migration_threshold = 1u << 30;

    // Default to the size-sensitive representatives; set
    // CARVE_BENCH_WORKLOADS for the full suite.
    if (!std::getenv("CARVE_BENCH_WORKLOADS")) {
        setenv("CARVE_BENCH_WORKLOADS",
               "XSBench,MCB,HPGMG,HPGMG-amry,Lulesh,bfs-road,"
               "stream-triad,RandAccess", 1);
    }
    const auto workloads = benchWorkloads(ctx);
    const std::vector<double> fracs{0.0, 0.015, 0.0312, 0.0625,
                                    0.125};

    std::vector<SimResult> base;
    for (const auto &wl : workloads)
        base.push_back(run(ctx, Preset::CarveHwc, wl));

    std::printf("%-12s %12s %12s\n", "carve-out", "geomean perf",
                "(1.00 == no carve-out)");
    for (const double f : fracs) {
        ctx.base.numa.spill_fraction = f;
        std::vector<double> rel;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const SimResult r = run(ctx, Preset::CarveHwc,
                                    workloads[i]);
            rel.push_back(static_cast<double>(base[i].cycles) /
                          static_cast<double>(r.cycles));
        }
        std::printf("%10.2f%% %11.2fx\n", 100.0 * f, geomean(rel));
    }
    return 0;
}
