/** @file Table V(a): NUMA speed-up (over 1 GPU) as a function of the
 * Remote Data Cache size: 0.5, 1, 2 and 4 GB per GPU (scaled). */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext();
    banner("Table V(a): performance sensitivity to RDC size",
           "geomean NUMA speed-up: NUMA-GPU 2.53x; CARVE-0.5GB "
           "3.50x; 1GB 3.55x; 2GB 3.61x; 4GB 3.65x — XSBench/MCB/"
           "HPGMG keep gaining with bigger RDCs",
           ctx);

    // Default to the size-sensitive representatives; set
    // CARVE_BENCH_WORKLOADS for the full suite.
    if (!std::getenv("CARVE_BENCH_WORKLOADS")) {
        setenv("CARVE_BENCH_WORKLOADS",
               "XSBench,MCB,HPGMG,HPGMG-amry,Lulesh,bfs-road,"
               "stream-triad,RandAccess", 1);
    }
    const auto workloads = benchWorkloads(ctx);

    // 1-GPU baselines and the no-RDC baseline.
    std::vector<SimResult> one, numa;
    for (const auto &wl : workloads) {
        one.push_back(run(ctx, Preset::SingleGpu, wl));
        numa.push_back(run(ctx, Preset::NumaGpu, wl));
    }

    std::printf("%-14s %9s", "workload", "NUMA-GPU");
    const std::vector<double> sizes_gb{0.5, 1.0, 2.0, 4.0};
    for (const double gb : sizes_gb)
        std::printf("  C-%.1fGB", gb);
    std::printf("\n");

    std::vector<std::vector<double>> per_size(sizes_gb.size());
    std::vector<double> vnuma;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        vnuma.push_back(speedupOver(one[i], numa[i]));
        std::printf("%-14s %8.2fx", workloads[i].name.c_str(),
                    vnuma.back());
        for (std::size_t s = 0; s < sizes_gb.size(); ++s) {
            ctx.base.rdc.size = static_cast<std::uint64_t>(
                sizes_gb[s] * static_cast<double>(GiB)) /
                ctx.suite.memory_scale;
            const SimResult r = run(ctx, Preset::CarveHwc,
                                    workloads[i]);
            per_size[s].push_back(speedupOver(one[i], r));
            std::printf(" %6.2fx", per_size[s].back());
        }
        std::printf("\n");
    }

    std::printf("%-14s %8.2fx", "geomean", geomean(vnuma));
    for (const auto &col : per_size)
        std::printf(" %6.2fx", geomean(col));
    std::printf("\n");
    return 0;
}
