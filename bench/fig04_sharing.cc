/** @file Figure 4: distribution of memory accesses to private,
 * read-only shared and read-write shared data at OS-page (2 MB) and
 * cacheline (128 B) granularity. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext(/* profile_lines */ true);
    banner("Figure 4: access distribution by sharing class, page vs "
           "line granularity",
           "~40% of accesses hit read-write shared *pages* (up to "
           "100%), but at line granularity most of that sharing is "
           "false and the accesses are private/read-only",
           ctx);

    std::printf("%-14s | %28s | %28s\n", "",
                "page granularity (2MB)", "line granularity (128B)");
    std::printf("%-14s | %8s %9s %9s | %8s %9s %9s\n", "workload",
                "private", "ro-shard", "rw-shard", "private",
                "ro-shard", "rw-shard");

    double sum_page_rw = 0.0, sum_line_rw = 0.0;
    unsigned n = 0;
    for (const auto &wl : benchWorkloads(ctx)) {
        const SimResult r = run(ctx, Preset::NumaGpu, wl);
        const SharingBreakdown &pg = r.page_sharing;
        const SharingBreakdown &ln = r.line_sharing;
        std::printf("%-14s | %7.1f%% %8.1f%% %8.1f%% | %7.1f%% "
                    "%8.1f%% %8.1f%%\n",
                    wl.name.c_str(), 100.0 * pg.fracPrivate(),
                    100.0 * pg.fracReadOnlyShared(),
                    100.0 * pg.fracReadWriteShared(),
                    100.0 * ln.fracPrivate(),
                    100.0 * ln.fracReadOnlyShared(),
                    100.0 * ln.fracReadWriteShared());
        sum_page_rw += pg.fracReadWriteShared();
        sum_line_rw += ln.fracReadWriteShared();
        ++n;
    }
    if (n) {
        std::printf("%-14s | rw-shared pages %.1f%% of accesses vs "
                    "rw-shared lines %.1f%%\n", "mean",
                    100.0 * sum_page_rw / n, 100.0 * sum_line_rw / n);
    }
    return 0;
}
