/** @file Figure 11: CARVE under software vs hardware coherence.
 * Software coherence (epoch-flushing the RDC at every kernel
 * boundary) forfeits inter-kernel locality; GPU-VI+IMST hardware
 * coherence restores it. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    const BenchContext ctx = makeContext();
    banner("Figure 11: CARVE coherence design space",
           "CARVE-SWC loses nearly all RDC benefit except on "
           "single-long-kernel workloads (XSBench); CARVE-HWC "
           "matches CARVE-No-Coherence",
           ctx);

    // Representative subset by default (full suite via
    // CARVE_BENCH_WORKLOADS): the iterative workloads that lose their
    // RDC value under SWC plus the single-long-kernel exception.
    if (!std::getenv("CARVE_BENCH_WORKLOADS")) {
        setenv("CARVE_BENCH_WORKLOADS",
               "Lulesh,Euler,HPGMG,SSSP,XSBench,MCB,bfs-road,"
               "stream-triad", 1);
    }
    std::printf("%-14s %10s %10s %10s %10s\n", "workload",
                "NUMA-GPU", "CARVE-SWC", "CARVE-HWC", "CARVE-NoC");

    std::vector<double> vb, vs, vh, vc;
    for (const auto &wl : benchWorkloads(ctx)) {
        const SimResult ideal = run(ctx, Preset::Ideal, wl);
        const SimResult numa = run(ctx, Preset::NumaGpu, wl);
        const SimResult swc = run(ctx, Preset::CarveSwc, wl);
        const SimResult hwc = run(ctx, Preset::CarveHwc, wl);
        const SimResult noc = run(ctx, Preset::CarveNoCoherence, wl);
        const auto rel = [&](const SimResult &r) {
            return static_cast<double>(ideal.cycles) /
                static_cast<double>(r.cycles);
        };
        vb.push_back(rel(numa));
        vs.push_back(rel(swc));
        vh.push_back(rel(hwc));
        vc.push_back(rel(noc));
        std::printf("%-14s %10.2f %10.2f %10.2f %10.2f\n",
                    wl.name.c_str(), vb.back(), vs.back(), vh.back(),
                    vc.back());
    }
    std::printf("%-14s %10.2f %10.2f %10.2f %10.2f\n", "geomean",
                geomean(vb), geomean(vs), geomean(vh), geomean(vc));
    std::printf("\n(values relative to ideal NUMA-GPU; 1.0 == "
                "ideal)\n");
    return 0;
}
