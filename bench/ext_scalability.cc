/** @file Extension (Section V-E): CARVE scalability with node count.
 * NUMA problems exacerbate as GPUs are added (more of the working
 * set is remote); CARVE keeps converting remote accesses to local
 * ones, so its advantage over NUMA-GPU *grows* with node count —
 * while the directory-less broadcast invalidation traffic also grows,
 * motivating the paper's call for directory-based coherence at scale.
 */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext();
    banner("Extension: scalability with GPU count (Section V-E)",
           "CARVE scales to more nodes; broadcast invalidates grow "
           "with node count (directory coherence would cap them)",
           ctx);

    if (!std::getenv("CARVE_BENCH_WORKLOADS")) {
        setenv("CARVE_BENCH_WORKLOADS",
               "Lulesh,HPGMG,stream-triad", 1);
    }
    const auto workloads = benchWorkloads(ctx);
    std::printf("workloads: ");
    for (const auto &wl : workloads)
        std::printf("%s ", wl.name.c_str());
    std::printf("\n\n%-6s %10s %10s %10s %14s\n", "GPUs", "NUMA-GPU",
                "CARVE", "Ideal", "inval/1Kwrite");

    for (const unsigned gpus : {2u, 4u, 8u}) {
        ctx.base.num_gpus = gpus;
        std::vector<double> vn, vc, vi;
        std::uint64_t invals = 0, writes = 0;
        for (const auto &wl : workloads) {
            const SimResult one = run(ctx, Preset::SingleGpu, wl);
            const SimResult numa = run(ctx, Preset::NumaGpu, wl);
            const SimResult carve = run(ctx, Preset::CarveHwc, wl);
            const SimResult ideal = run(ctx, Preset::Ideal, wl);
            vn.push_back(speedupOver(one, numa));
            vc.push_back(speedupOver(one, carve));
            vi.push_back(speedupOver(one, ideal));
            invals += carve.hw_invalidates;
            writes += carve.traffic.local_writes +
                carve.traffic.remote_writes;
        }
        std::printf("%-6u %9.2fx %9.2fx %9.2fx %14.1f\n", gpus,
                    geomean(vn), geomean(vc), geomean(vi),
                    writes ? 1000.0 * static_cast<double>(invals) /
                                 static_cast<double>(writes)
                           : 0.0);
    }
    return 0;
}
