/** @file Figure 8: fraction of post-LLC memory accesses serviced by
 * remote GPU memory, NUMA-GPU vs NUMA-GPU + CARVE.
 *
 * Runs on the parallel experiment harness (CARVE_BENCH_THREADS
 * workers); printed output matches the historical serial loop. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    const BenchContext ctx = makeContext();
    banner("Figure 8: fraction of remote memory accesses",
           "CARVE reduces the average fraction of remote accesses "
           "from ~40% (NUMA-GPU) to ~8%",
           ctx);

    std::printf("%-14s %10s %10s %12s\n", "workload", "NUMA-GPU",
                "CARVE", "rdc-hitrate");

    const std::vector<Preset> presets = {Preset::NumaGpu,
                                         Preset::CarveHwc};
    const auto workloads = benchWorkloads(ctx);
    const auto grid = runGrid(ctx, presets, workloads);

    double sum_numa = 0.0, sum_carve = 0.0;
    unsigned n = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const SimResult &numa = grid[w][0];
        const SimResult &carve = grid[w][1];
        const double rdc_hr = carve.rdc_hits + carve.rdc_misses
            ? static_cast<double>(carve.rdc_hits) /
                static_cast<double>(carve.rdc_hits + carve.rdc_misses)
            : 0.0;
        std::printf("%-14s %9.1f%% %9.1f%% %11.1f%%\n",
                    workloads[w].name.c_str(),
                    100.0 * numa.frac_remote,
                    100.0 * carve.frac_remote, 100.0 * rdc_hr);
        sum_numa += numa.frac_remote;
        sum_carve += carve.frac_remote;
        ++n;
    }
    if (n) {
        std::printf("%-14s %9.1f%% %9.1f%%\n", "mean",
                    100.0 * sum_numa / n, 100.0 * sum_carve / n);
    }
    return 0;
}
