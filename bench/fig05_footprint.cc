/** @file Figure 5: shared working-set footprint vs aggregate system
 * LLC capacity — why caching remote data on-chip cannot work. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext(/* profile_lines */ true);
    banner("Figure 5: shared memory footprint vs aggregate LLC",
           "the shared working set of most workloads exceeds the "
           "aggregate 32MB LLC by 1-3 orders of magnitude",
           ctx);

    const double llc_total_mib =
        static_cast<double>(ctx.base.l2.size) * ctx.base.num_gpus /
        (1024.0 * 1024.0);
    std::printf("aggregate LLC capacity: %.1f MiB (scaled)\n\n",
                llc_total_mib);
    std::printf("%-14s %14s %14s %10s\n", "workload",
                "shared-pages", "shared-lines", "vs LLC");

    for (const auto &wl : benchWorkloads(ctx)) {
        const SimResult r = run(ctx, Preset::NumaGpu, wl);
        const double pages_mib =
            static_cast<double>(r.shared_page_footprint) /
            (1024.0 * 1024.0);
        const double lines_mib =
            static_cast<double>(r.shared_line_footprint) /
            (1024.0 * 1024.0);
        std::printf("%-14s %11.1f MiB %11.1f MiB %9.1fx\n",
                    wl.name.c_str(), pages_mib, lines_mib,
                    pages_mib / llc_total_mib);
    }
    return 0;
}
