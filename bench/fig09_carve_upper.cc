/** @file Figure 9: CARVE with zero-overhead coherence
 * (CARVE-No-Coherence) against NUMA-GPU, +Repl-RO and the ideal
 * system — the upper-bound case for caching remote data in video
 * memory. */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    const BenchContext ctx = makeContext();
    banner("Figure 9: CARVE-No-Coherence performance (upper bound)",
           "NUMA-GPU and +Repl-RO sit ~50% below ideal on average; "
           "CARVE-No-Coherence closes to within ~5%; RandAccess is "
           "the outlier that *loses* ~10% from RDC miss "
           "serialization",
           ctx);

    std::printf("%-14s %10s %10s %10s   %s\n", "workload", "NUMA-GPU",
                "+Repl-RO", "CARVE-NoC",
                "(relative to ideal, 1.0 == ideal)");

    std::vector<double> vn, vr, vc;
    for (const auto &wl : benchWorkloads(ctx)) {
        const SimResult ideal = run(ctx, Preset::Ideal, wl);
        const SimResult numa = run(ctx, Preset::NumaGpu, wl);
        const SimResult repl = run(ctx, Preset::NumaGpuReplRO, wl);
        const SimResult noc = run(ctx, Preset::CarveNoCoherence, wl);
        const auto rel = [&](const SimResult &r) {
            return static_cast<double>(ideal.cycles) /
                static_cast<double>(r.cycles);
        };
        vn.push_back(rel(numa));
        vr.push_back(rel(repl));
        vc.push_back(rel(noc));
        std::printf("%-14s %10.2f %10.2f %10.2f\n", wl.name.c_str(),
                    vn.back(), vr.back(), vc.back());
    }
    std::printf("%-14s %10.2f %10.2f %10.2f\n", "geomean",
                geomean(vn), geomean(vr), geomean(vc));
    return 0;
}
