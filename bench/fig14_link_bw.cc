/** @file Figure 14: sensitivity to inter-GPU link bandwidth.
 * NUMA-GPU tracks the link; CARVE is largely insensitive and close
 * to ideal at every bandwidth.
 *
 * To keep the sweep tractable this bench uses a representative
 * subset of workloads by default (override with
 * CARVE_BENCH_WORKLOADS to choose your own, or set it to a list
 * containing all names for the full suite). */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext();
    banner("Figure 14: speedup over 1 GPU vs inter-GPU link bandwidth",
           "NUMA-GPU performance follows link bandwidth; CARVE stays "
           "near ideal even at 32 GB/s, and its advantage grows as "
           "links get slower",
           ctx);

    // Representative mix: heavy false sharing, RO-shared, huge
    // lookup, private streaming, irregular.
    if (!std::getenv("CARVE_BENCH_WORKLOADS")) {
        setenv("CARVE_BENCH_WORKLOADS",
               "Lulesh,HPGMG,bfs-road,XSBench,stream-triad,SSSP", 1);
    }
    const auto workloads = benchWorkloads(ctx);
    std::printf("workloads: ");
    for (const auto &wl : workloads)
        std::printf("%s ", wl.name.c_str());
    std::printf("\n\n%-10s %10s %10s %10s\n", "link GB/s", "NUMA-GPU",
                "+Repl-RO", "CARVE");

    for (const double bw : {16.0, 64.0, 256.0}) {
        ctx.base.link.gpu_gpu_bw = bw;
        std::vector<double> vn, vr, vc;
        for (const auto &wl : workloads) {
            const SimResult one = run(ctx, Preset::SingleGpu, wl);
            vn.push_back(
                speedupOver(one, run(ctx, Preset::NumaGpu, wl)));
            vr.push_back(
                speedupOver(one, run(ctx, Preset::NumaGpuReplRO,
                                     wl)));
            vc.push_back(
                speedupOver(one, run(ctx, Preset::CarveHwc, wl)));
        }
        std::printf("%-10.0f %9.2fx %9.2fx %9.2fx\n", bw,
                    geomean(vn), geomean(vr), geomean(vc));
    }

    // The ideal bound is link-independent: report it once.
    std::vector<double> vi;
    for (const auto &wl : workloads) {
        const SimResult one = run(ctx, Preset::SingleGpu, wl);
        vi.push_back(speedupOver(one, run(ctx, Preset::Ideal, wl)));
    }
    std::printf("%-10s %9s %9s %8.2fx  (ideal, any bandwidth)\n",
                "inf", "-", "-", geomean(vi));
    return 0;
}
