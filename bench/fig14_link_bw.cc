/** @file Figure 14: sensitivity to inter-GPU link bandwidth.
 * NUMA-GPU tracks the link; CARVE is largely insensitive and close
 * to ideal at every bandwidth.
 *
 * To keep the sweep tractable this bench uses a representative
 * subset of workloads by default (override with
 * CARVE_BENCH_WORKLOADS to choose your own, or set it to a list
 * containing all names for the full suite).
 *
 * Every (bandwidth, preset, workload) cell is an independent
 * simulation, so the whole figure is submitted to the experiment
 * harness as one sweep (CARVE_BENCH_THREADS workers). */

#include "bench_util.hh"

int
main()
{
    using namespace carve;
    using namespace carve::bench;

    BenchContext ctx = makeContext();
    banner("Figure 14: speedup over 1 GPU vs inter-GPU link bandwidth",
           "NUMA-GPU performance follows link bandwidth; CARVE stays "
           "near ideal even at 32 GB/s, and its advantage grows as "
           "links get slower",
           ctx);

    // Representative mix: heavy false sharing, RO-shared, huge
    // lookup, private streaming, irregular.
    const auto workloads = benchWorkloads(
        ctx, "Lulesh,HPGMG,bfs-road,XSBench,stream-triad,SSSP");
    std::printf("workloads: ");
    for (const auto &wl : workloads)
        std::printf("%s ", wl.name.c_str());
    std::printf("\n\n%-10s %10s %10s %10s\n", "link GB/s", "NUMA-GPU",
                "+Repl-RO", "CARVE");

    const std::vector<double> bandwidths = {16.0, 64.0, 256.0};
    const std::vector<Preset> presets = {
        Preset::SingleGpu, Preset::NumaGpu, Preset::NumaGpuReplRO,
        Preset::CarveHwc};

    // One flat sweep over bandwidth x workload x preset, plus the
    // link-independent ideal bound per workload at the end.
    std::vector<harness::RunSpec> specs;
    for (const double bw : bandwidths) {
        BenchContext point = ctx;
        point.base.link.gpu_gpu_bw = bw;
        for (const auto &wl : workloads) {
            for (const Preset p : presets)
                specs.push_back(makeSpec(point, p, wl));
        }
    }
    for (const auto &wl : workloads) {
        specs.push_back(makeSpec(ctx, Preset::SingleGpu, wl));
        specs.push_back(makeSpec(ctx, Preset::Ideal, wl));
    }

    const std::vector<SimResult> flat = runSpecs(specs);

    std::size_t i = 0;
    for (const double bw : bandwidths) {
        std::vector<double> vn, vr, vc;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const SimResult &one = flat[i];
            vn.push_back(speedupOver(one, flat[i + 1]));
            vr.push_back(speedupOver(one, flat[i + 2]));
            vc.push_back(speedupOver(one, flat[i + 3]));
            i += presets.size();
        }
        std::printf("%-10.0f %9.2fx %9.2fx %9.2fx\n", bw,
                    geomean(vn), geomean(vr), geomean(vc));
    }

    // The ideal bound is link-independent: report it once.
    std::vector<double> vi;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        vi.push_back(speedupOver(flat[i], flat[i + 1]));
        i += 2;
    }
    std::printf("%-10s %9s %9s %8.2fx  (ideal, any bandwidth)\n",
                "inf", "-", "-", geomean(vi));
    return 0;
}
