/** @file Shared plumbing for the figure/table reproduction benches.
 *
 * Every bench binary prints the series of one paper figure or table.
 * Common knobs come from the environment:
 *
 *   CARVE_BENCH_SCALE      capacity scale divisor (default 8)
 *   CARVE_BENCH_DURATION   trace-length multiplier (default 0.35; use
 *                          1.0 or more for slower, tighter runs)
 *   CARVE_BENCH_WORKLOADS  comma list to restrict the suite (optional)
 *   CARVE_BENCH_THREADS    harness worker threads for benches that
 *                          run through runGrid() (default: all cores)
 *   CARVE_BENCH_MAX_CYCLES per-run cycle watchdog (default 1e9;
 *                          0 disables — a livelocked run then hangs)
 *
 * Malformed numeric values are fatal, not silently zero.
 */

#ifndef CARVE_BENCH_BENCH_UTIL_HH
#define CARVE_BENCH_BENCH_UTIL_HH

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "core/system_preset.hh"
#include "harness/sweep.hh"
#include "harness/thread_pool.hh"
#include "workloads/suite.hh"

namespace carve {
namespace bench {

/** Environment-configured context shared by all benches. */
struct BenchContext
{
    SuiteOptions suite;
    SystemConfig base;   ///< Table III scaled by suite.memory_scale
    RunOptions opts;
};

inline double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    double out = fallback;
    const char *end = v + std::string_view(v).size();
    const auto res = std::from_chars(v, end, out);
    if (res.ec != std::errc() || res.ptr != end)
        fatal("%s: expected a number, got '%s'", name, v);
    return out;
}

inline std::uint64_t
envUnsigned(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    std::uint64_t out = fallback;
    const char *end = v + std::string_view(v).size();
    const auto res = std::from_chars(v, end, out);
    if (res.ec != std::errc() || res.ptr != end)
        fatal("%s: expected an unsigned integer, got '%s'", name, v);
    return out;
}

/** Harness worker threads for grid benches. */
inline unsigned
benchThreads()
{
    return static_cast<unsigned>(envUnsigned(
        "CARVE_BENCH_THREADS",
        harness::ThreadPool::hardwareThreads()));
}

inline BenchContext
makeContext(bool profile_lines = false)
{
    BenchContext ctx;
    ctx.suite.memory_scale = static_cast<unsigned>(
        envDouble("CARVE_BENCH_SCALE", 8));
    ctx.suite.duration = envDouble("CARVE_BENCH_DURATION", 0.2);
    ctx.base = SystemConfig{}.scaled(ctx.suite.memory_scale);
    ctx.opts.profile_lines = profile_lines;
    // Real default watchdog: a livelocked simulation must fail the
    // bench, not hang a sweep forever. The scaled suite finishes runs
    // in well under 10M cycles, so 1e9 is generous at any duration.
    ctx.opts.max_cycles =
        envUnsigned("CARVE_BENCH_MAX_CYCLES", 1'000'000'000);
    return ctx;
}

/** The (possibly restricted) workload list for this bench run. */
inline std::vector<WorkloadParams>
benchWorkloads(const BenchContext &ctx,
               const char *default_filter = nullptr)
{
    std::vector<WorkloadParams> all = standardSuite(ctx.suite);
    const char *filter = std::getenv("CARVE_BENCH_WORKLOADS");
    if (!filter)
        filter = default_filter;
    if (!filter)
        return all;
    const std::string list = filter;
    std::vector<WorkloadParams> picked;
    for (const auto &wl : all) {
        if (list.find(wl.name) != std::string::npos)
            picked.push_back(wl);
    }
    return picked.empty() ? all : picked;
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *claim,
       const BenchContext &ctx)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s\n", experiment);
    std::printf("paper claim: %s\n", claim);
    std::printf("(capacities scaled 1/%u, trace duration x%.2f; see "
                "EXPERIMENTS.md)\n",
                ctx.suite.memory_scale, ctx.suite.duration);
    std::printf("================================================="
                "=============\n");
}

inline SimResult
run(const BenchContext &ctx, Preset preset, const WorkloadParams &wl)
{
    return carve::run(makePresetJob(preset, ctx.base, wl, ctx.opts));
}

/** One harness spec for a (preset, workload) cell of a bench grid. */
inline harness::RunSpec
makeSpec(const BenchContext &ctx, Preset preset,
         const WorkloadParams &wl)
{
    harness::RunSpec s;
    s.preset = preset;
    s.workload = wl;
    s.base = ctx.base;
    s.opts = ctx.opts;
    return s;
}

/**
 * Execute @p specs on the harness with CARVE_BENCH_THREADS workers
 * and return results in spec order. Results are identical to calling
 * run() spec-by-spec; any failed or watchdog-tripped run is fatal —
 * a bench's series is meaningless with holes in it.
 */
inline std::vector<SimResult>
runSpecs(const std::vector<harness::RunSpec> &specs)
{
    harness::SweepOptions opt;
    opt.threads = benchThreads();
    std::vector<harness::RunResult> rr =
        harness::runSweep(specs, opt);
    std::vector<SimResult> out;
    out.reserve(rr.size());
    for (auto &r : rr) {
        if (r.status == harness::RunStatus::Watchdog)
            fatal("%s: watchdog tripped — raise "
                  "CARVE_BENCH_MAX_CYCLES or shorten the trace",
                  r.key().c_str());
        if (!r.ok())
            fatal("%s: %s", r.key().c_str(), r.error.c_str());
        out.push_back(std::move(r.sim));
    }
    return out;
}

/**
 * Run the cross product @p presets x @p workloads in parallel.
 * grid[w][p] is the result for workloads[w] under presets[p].
 */
inline std::vector<std::vector<SimResult>>
runGrid(const BenchContext &ctx, const std::vector<Preset> &presets,
        const std::vector<WorkloadParams> &workloads)
{
    std::vector<harness::RunSpec> specs;
    specs.reserve(presets.size() * workloads.size());
    for (const auto &wl : workloads) {
        for (const Preset p : presets)
            specs.push_back(makeSpec(ctx, p, wl));
    }
    std::vector<SimResult> flat = runSpecs(specs);

    std::vector<std::vector<SimResult>> grid(workloads.size());
    std::size_t i = 0;
    for (auto &row : grid) {
        row.reserve(presets.size());
        for (std::size_t p = 0; p < presets.size(); ++p)
            row.push_back(std::move(flat[i++]));
    }
    return grid;
}

} // namespace bench
} // namespace carve

#endif // CARVE_BENCH_BENCH_UTIL_HH
