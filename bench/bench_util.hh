/** @file Shared plumbing for the figure/table reproduction benches.
 *
 * Every bench binary prints the series of one paper figure or table.
 * Common knobs come from the environment:
 *
 *   CARVE_BENCH_SCALE     capacity scale divisor (default 8)
 *   CARVE_BENCH_DURATION  trace-length multiplier (default 0.35; use
 *                         1.0 or more for slower, tighter runs)
 *   CARVE_BENCH_WORKLOADS comma list to restrict the suite (optional)
 */

#ifndef CARVE_BENCH_BENCH_UTIL_HH
#define CARVE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "core/system_preset.hh"
#include "workloads/suite.hh"

namespace carve {
namespace bench {

/** Environment-configured context shared by all benches. */
struct BenchContext
{
    SuiteOptions suite;
    SystemConfig base;   ///< Table III scaled by suite.memory_scale
    RunOptions opts;
};

inline double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v ? std::atof(v) : fallback;
}

inline BenchContext
makeContext(bool profile_lines = false)
{
    BenchContext ctx;
    ctx.suite.memory_scale = static_cast<unsigned>(
        envDouble("CARVE_BENCH_SCALE", 8));
    ctx.suite.duration = envDouble("CARVE_BENCH_DURATION", 0.2);
    ctx.base = SystemConfig{}.scaled(ctx.suite.memory_scale);
    ctx.opts.profile_lines = profile_lines;
    return ctx;
}

/** The (possibly restricted) workload list for this bench run. */
inline std::vector<WorkloadParams>
benchWorkloads(const BenchContext &ctx)
{
    std::vector<WorkloadParams> all = standardSuite(ctx.suite);
    const char *filter = std::getenv("CARVE_BENCH_WORKLOADS");
    if (!filter)
        return all;
    const std::string list = filter;
    std::vector<WorkloadParams> picked;
    for (const auto &wl : all) {
        if (list.find(wl.name) != std::string::npos)
            picked.push_back(wl);
    }
    return picked.empty() ? all : picked;
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *claim,
       const BenchContext &ctx)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s\n", experiment);
    std::printf("paper claim: %s\n", claim);
    std::printf("(capacities scaled 1/%u, trace duration x%.2f; see "
                "EXPERIMENTS.md)\n",
                ctx.suite.memory_scale, ctx.suite.duration);
    std::printf("================================================="
                "=============\n");
}

inline SimResult
run(const BenchContext &ctx, Preset preset, const WorkloadParams &wl)
{
    return runPreset(preset, ctx.base, wl, ctx.opts);
}

} // namespace bench
} // namespace carve

#endif // CARVE_BENCH_BENCH_UTIL_HH
